(** The query service daemon: sockets, admission control, deadlines,
    graceful drain.

    Architecture: one listener thread accepts connections (woken by a
    self-pipe for shutdown); each connection gets a reader thread that
    parses request lines (length-capped: an over-long line gets a
    [parse_error] and the connection is closed) and answers the cheap
    cases inline — [parse_error] (the connection survives), [health],
    [bad_request] for a non-positive [deadline_ms], [overloaded] when
    the bounded admission queue is full, [shutting_down] while
    draining. Admitted requests wait in the queue for one of
    [service_threads] worker threads, which run them through
    {!Service.handle} on the shared {!Session} store and the
    persistent {!Exec.Pool}, under a {!Obs.Trace} span and a
    per-endpoint {!Obs.Metrics} latency histogram.

    Ordering: every non-blank request line gets a per-connection
    sequence number and all responses — inline or worker-produced —
    pass through a per-connection reorder buffer, so a pipelining
    client receives responses strictly in request order even when a
    later request finishes (or is answered inline) first. The buffer
    is bounded: past [128] unflushed responses the reader stops
    reading until it drains (backpressure through the socket).

    Deadlines: a request's budget ([deadline_ms] field, else the
    server default) is converted to an absolute {!Obs.Clock} instant
    at admission. Workers re-check it at dequeue and pass a guard into
    the engine that re-checks at every valuation-chunk boundary;
    either way the client gets a typed [deadline_exceeded] and the
    partial count is discarded. A non-positive [deadline_ms] is
    refused with [bad_request] — a client cannot opt out of the
    operator's budget cap.

    Drain ({!drain}, also wired to SIGTERM/SIGINT by {!run}): stop
    accepting — close the listening socket and unlink the Unix socket
    path — let queued and in-flight requests finish, then stop the
    workers, shut down every connection, and join all threads. During
    the drain window readers still answer [health] (reporting
    [draining]) and refuse evaluating requests with [shutting_down].
    The wait for in-flight work is bounded by [drain_grace_s]: past it
    every connection socket is shut down, which unblocks any worker
    stuck writing to a peer that stopped reading (writes are also
    individually capped with [SO_SNDTIMEO]), so SIGTERM always
    terminates the process. *)

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  jobs : int option;  (** chunk count for the parallel sweeps *)
  service_threads : int;  (** worker threads executing requests *)
  max_queue : int;  (** admission-queue bound; 0 rejects all queueing *)
  deadline_ms : int option;  (** default per-request budget *)
  max_sessions : int;  (** session-store cap *)
  drain_grace_s : float;
      (** how long drain waits for in-flight work before force-closing
          connections *)
  shard_id : string option;
      (** stable identity reported by [health] (defaults to the
          listen address) — lets a router tell shards apart *)
}

val default_config : addr -> config
(** [jobs = None], 4 service threads, queue bound 64, no deadline,
    16 sessions, 30s drain grace, [shard_id = None]. *)

val addr_string : addr -> string
(** Human-readable form: the socket path, or [host:port]. *)

val resolve_ipv4 : string -> Unix.inet_addr
(** Resolve a dotted-quad or host name to an IPv4 address.
    @raise Failure with a readable message when the name does not
    resolve (instead of leaking [Not_found] or an array access from
    [Unix.gethostbyname]). *)

type t

val start : config -> t
(** Bind, listen, spawn the listener and worker threads, and return.
    Also ignores SIGPIPE process-wide (a client hanging up mid-response
    must not kill the server). Each start stamps a fresh nonzero
    [generation], reported by [health]: a router seeing it change
    behind a fixed address knows the shard restarted and lost its
    sessions.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Failure when a TCP host name does not resolve. *)

val drain : t -> unit
(** Begin graceful shutdown; idempotent, safe from signal handlers
    (sets a flag and writes the self-pipe, nothing else). *)

val wait : t -> unit
(** Block until the server has fully shut down (listener, workers and
    readers joined). Call {!drain} first — or from another thread or a
    signal handler — otherwise this blocks forever. *)

val run : ?signals:bool -> config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!drain} (unless
    [~signals:false]), then {!wait}. The [certainty serve] main
    loop. *)
