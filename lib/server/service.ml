module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Query = Logic.Query
module Parser = Logic.Parser
module F = Logic.Formula
module R = Arith.Rat
module P = Arith.Poly
module AE = Approx_measure.Estimator

exception Deadline

let ( let* ) = Result.bind

let require req name =
  match Wire.str_field req name with
  | Some s -> Ok s
  | None -> Error (Wire.Bad_request, Printf.sprintf "missing field %S" name)

let parse_query s =
  match Parser.query s with
  | Ok q -> Ok q
  | Error msg -> Error (Wire.Bad_request, "query: " ^ msg)

let well_formed schema q =
  match Query.well_formed schema q with
  | Ok () -> Ok ()
  | Error msg -> Error (Wire.Bad_request, "ill-formed query: " ^ msg)

let get_session sessions req =
  let* schema = require req "schema" in
  let* db = require req "db" in
  match Session.get sessions ~schema ~db with
  | Ok entry -> Ok entry
  | Error msg -> Error (Wire.Bad_request, msg)

(* The candidate tuple: required exactly when the query is
   non-Boolean, like the CLI's --tuple. *)
let get_tuple req q =
  match Wire.str_field req "tuple" with
  | Some s -> (
      match Parser.tuple s with
      | Ok t -> Ok t
      | Error msg -> Error (Wire.Bad_request, "tuple: " ^ msg))
  | None ->
      if Query.arity q = 0 then Ok Tuple.empty
      else Error (Wire.Bad_request, "non-Boolean query needs a \"tuple\" field")

let get_deps schema req =
  let* s = require req "constraints" in
  match Constraints.Dep_parser.parse schema s with
  | Ok deps -> Ok deps
  | Error msg -> Error (Wire.Bad_request, "constraints: " ^ msg)

let get_ks req =
  match Wire.str_field req "ks" with
  | None -> Ok None
  | Some s -> (
      let parts =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      match List.map int_of_string parts with
      | [] -> Error (Wire.Bad_request, "empty \"ks\" field")
      | ks -> Ok (Some ks)
      | exception _ ->
          Error (Wire.Bad_request, Printf.sprintf "invalid \"ks\" field %S" s))

(* Refuse a µ^k sweep whose space does not fit in an int — same
   refusal as the CLI's check_space_sizes, but as a typed response. *)
let check_space ~nulls ks =
  let rec go = function
    | [] -> Ok ()
    | k :: rest -> (
        match Incomplete.Enumerate.space_size_exn ~nulls ~k with
        | _ -> go rest
        | exception Arith.Bigint.Overflow size ->
            Error
              ( Wire.Bad_request,
                Printf.sprintf
                  "k = %d over %d nulls gives a valuation space of %s \
                   valuations; too large to enumerate"
                  k (List.length nulls)
                  (Arith.Bigint.to_string size) ))
  in
  go ks

(* Factorized sweeps only enumerate per-component spaces k^mᵢ. *)
let check_space_plan ~plan ks =
  let rec go = function
    | [] -> Ok ()
    | k :: rest -> (
        let rec comps i = function
          | [] -> Ok ()
          | c :: cs -> (
              let cn = c.Incomplete.Factor.c_nulls in
              match Incomplete.Enumerate.space_size_exn ~nulls:cn ~k with
              | _ -> comps (i + 1) cs
              | exception Arith.Bigint.Overflow size ->
                  Error
                    ( Wire.Bad_request,
                      Printf.sprintf
                        "k = %d gives component %d (%d nulls) a space of %s \
                         valuations; too large to enumerate even factorized"
                        k (i + 1) (List.length cn)
                        (Arith.Bigint.to_string size) ))
        in
        match comps 1 plan.Incomplete.Factor.components with
        | Ok () -> go rest
        | Error e -> Error e)
  in
  go ks

(* The CLI's gating, verbatim: the factorized series only replaces the
   monolithic sweep on a genuine [Decomposable] verdict (≥ 2 parts) —
   the engines agree bit-for-bit, so the wire payload is unchanged
   except for the extra decomp fields. *)
let decomp_certificate inst sentence ~extra_nulls ks =
  let kc = List.fold_left max 1 ks in
  let d = Analysis.Decomp.analyze ~k:kc ~extra_nulls inst sentence in
  match (d.Analysis.Decomp.verdict, Analysis.Decomp.plan d) with
  | Analysis.Decomp.Decomposable, Some p -> Some (d, p)
  | _ -> None

let decomp_fields d =
  [ ("decomp_parts", Wire.I (Analysis.Decomp.parts d));
    ("decomp_sizes", Wire.S (Analysis.Decomp.sizes_string d))
  ]

(* The static-analysis gate. Unlike the CLI (which prints warnings and
   only aborts under --strict), the server always refuses queries with
   analysis errors: there is no terminal to warn on, and a typed
   response with the stable codes is more useful to a remote caller
   than a half-run evaluation. *)
let precheck ?deps ?tuple schema inst q =
  let report = Analysis.Report.analyze ~inst ?deps ?tuple schema q in
  if not (Analysis.Report.has_errors report) then Ok ()
  else
    let codes =
      Analysis.Report.all_diags report
      |> List.filter (fun d -> d.Analysis.Diag.severity = Analysis.Diag.Error)
      |> List.map (fun d -> d.Analysis.Diag.code)
      |> List.sort_uniq String.compare
    in
    Error
      ( Wire.Analysis_error,
        "static analysis failed: " ^ String.concat " " codes )

(* Render in name order, not code order: relation sets iterate in
   constant-code order, and codes are process-global intern state —
   two shards that interned the same constants in a different order
   would list the same answers differently. Sorting the rendered
   strings makes the wire bytes a function of content alone, which the
   router tier's byte-identity gate depends on. *)
let rel_string rel =
  String.concat "; "
    (List.sort String.compare
       (List.map Tuple.to_string (Relation.to_list rel)))

let series_string series =
  String.concat ";"
    (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k (R.to_string v)) series)

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

let run_certain ~sessions ?jobs ?guard req =
  let* entry = get_session sessions req in
  (* One snapshot of the session state per request: a concurrent
     update swaps [entry.inst], and every derived structure is keyed
     by the snapshot's generation — so the whole response is computed
     against one consistent instance. Same in every handler below. *)
  let inst = entry.Session.inst and cache = entry.Session.cache in
  let* qs = require req "query" in
  let* q = parse_query qs in
  let* () = well_formed entry.Session.schema q in
  let* () = precheck entry.Session.schema inst q in
  let certain = Incomplete.Certain.certain_answers ?jobs ?guard ~cache inst q in
  let possible =
    Incomplete.Certain.possible_answers ?jobs ?guard ~cache inst q
  in
  let naive = Incomplete.Naive.answers inst q in
  Ok
    [ ("certain", Wire.S (rel_string certain));
      ("certain_count", Wire.I (Relation.cardinal certain));
      ("possible", Wire.S (rel_string possible));
      ("possible_count", Wire.I (Relation.cardinal possible));
      ("naive", Wire.S (rel_string naive));
      ("naive_count", Wire.I (Relation.cardinal naive))
    ]

let run_measure ~sessions ?jobs ?guard req =
  let* entry = get_session sessions req in
  let inst = entry.Session.inst and cache = entry.Session.cache in
  let* qs = require req "query" in
  let* q = parse_query qs in
  let* () = well_formed entry.Session.schema q in
  let* tuple = get_tuple req q in
  let* () = precheck ~tuple entry.Session.schema inst q in
  let sp = Zeroone.Support_poly.of_query inst q tuple in
  let mu = Zeroone.Measure.mu_symbolic inst q tuple in
  let verdict =
    Format.asprintf "%a" Zeroone.Measure.pp_verdict
      (Zeroone.Measure.mu inst q tuple)
  in
  let* ks = get_ks req in
  let* series =
    match ks with
    | None -> Ok []
    | Some ks ->
        let nulls =
          List.sort_uniq Int.compare (Instance.nulls inst @ Tuple.nulls tuple)
        in
        match
          decomp_certificate inst
            (Logic.Query.instantiate q tuple)
            ~extra_nulls:(Tuple.nulls tuple) ks
        with
        | Some (d, plan) ->
            let* () = check_space_plan ~plan ks in
            let series =
              Incomplete.Support.mu_k_series_plan ?jobs ?guard ~cache inst plan
                ~ks
            in
            Ok
              (("series", Wire.S (series_string series)) :: decomp_fields d)
        | None ->
            let* () = check_space ~nulls ks in
            let series =
              Incomplete.Support.mu_k_series ?jobs ?guard ~cache inst q tuple
                ~ks
            in
            Ok [ ("series", Wire.S (series_string series)) ]
  in
  Ok
    ([ ("supp_poly", Wire.S (P.to_string sp));
       ("nulls", Wire.I (Instance.null_count inst));
       ("mu", Wire.S (R.to_string mu));
       ("verdict", Wire.S verdict)
     ]
    @ series)

let run_conditional ~sessions ?jobs ?guard req =
  let* entry = get_session sessions req in
  let inst = entry.Session.inst and cache = entry.Session.cache in
  let* qs = require req "query" in
  let* q = parse_query qs in
  let* () = well_formed entry.Session.schema q in
  let* deps = get_deps entry.Session.schema req in
  let* tuple = get_tuple req q in
  let* () = precheck ~deps ~tuple entry.Session.schema inst q in
  let sch = entry.Session.schema in
  let sigma = Constraints.Dependency.set_to_formula sch deps in
  let report = Zeroone.Conditional.mu_cond_report ?jobs ~cache ~sigma inst q tuple in
  let strategy = Zeroone.Conditional.strategy deps tuple in
  let chase =
    match strategy with
    | Zeroone.Conditional.Chase_fds ->
        (* The session memoizes the finished chase per FD set and
           advances it across inserts, so repeated conditional queries
           (and queries after updates) skip the fixpoint. *)
        let fds = Constraints.Dependency.fds_of_schema sch deps in
        let outcome = Session.chase_outcome entry ~inst fds in
        [ ( "chase",
            Wire.S
              (R.to_string (Zeroone.Conditional.mu_cond_chased outcome q tuple))
          )
        ]
    | Zeroone.Conditional.Symbolic -> []
  in
  let* ks = get_ks req in
  let* series =
    match ks with
    | None -> Ok []
    | Some ks ->
        let nulls =
          List.sort_uniq Int.compare
            (Instance.nulls inst @ Tuple.nulls tuple @ F.nulls sigma)
        in
        let kc = List.fold_left max 1 ks in
        let dnum, dden =
          Zeroone.Conditional.cond_decomp ~k:kc ~sigma inst q tuple
        in
        let decomposable d =
          match d.Analysis.Decomp.verdict with
          | Analysis.Decomp.Decomposable -> true
          | _ -> false
        in
        let plans =
          if decomposable dnum || decomposable dden then
            match (Analysis.Decomp.plan dnum, Analysis.Decomp.plan dden) with
            | Some np, Some dp -> Some (np, dp)
            | _ -> None
          else None
        in
        match plans with
        | Some (num_plan, den_plan) ->
            let* () = check_space_plan ~plan:num_plan ks in
            let* () = check_space_plan ~plan:den_plan ks in
            let series =
              List.map
                (fun k ->
                  ( k,
                    Zeroone.Conditional.mu_cond_k_plans ?jobs ?guard ~cache
                      ~num_plan ~den_plan inst ~k ))
                ks
            in
            Ok
              [ ("series", Wire.S (series_string series));
                ( "decomp_parts",
                  Wire.I (Analysis.Decomp.parts dnum + Analysis.Decomp.parts dden)
                )
              ]
        | None ->
            let* () = check_space ~nulls ks in
            let series =
              List.map
                (fun k ->
                  ( k,
                    Zeroone.Conditional.mu_cond_k ?jobs ?guard ~cache ~sigma
                      inst q tuple ~k ))
                ks
            in
            Ok [ ("series", Wire.S (series_string series)) ]
  in
  Ok
    ([ ("numerator", Wire.S (P.to_string report.Zeroone.Conditional.numerator));
       ( "denominator",
         Wire.S (P.to_string report.Zeroone.Conditional.denominator) );
       ("value", Wire.S (R.to_string report.Zeroone.Conditional.value));
       ( "strategy",
         Wire.S
           (match strategy with
           | Zeroone.Conditional.Chase_fds -> "chase_fds"
           | Zeroone.Conditional.Symbolic -> "symbolic") )
     ]
    @ chase @ series)

(* The approx op: a seeded Monte-Carlo (ε,δ)-estimate of µ^k — or of
   µ^k(Q|Σ) when a "constraints" field rides along. Unlike "measure"
   there is no space preflight: estimating the spaces the exact sweep
   must refuse is the endpoint's reason to exist. The response is
   deterministic for a fixed seed, whatever the server's --jobs. *)

let get_prob req name =
  let* s = require req name in
  match AE.rat_of_string s with
  | Ok v ->
      if R.compare v R.zero > 0 && R.compare v R.one < 0 then Ok v
      else
        Error
          ( Wire.Bad_request,
            Printf.sprintf "%s must lie strictly between 0 and 1" name )
  | Error msg -> Error (Wire.Bad_request, Printf.sprintf "%s: %s" name msg)

let run_approx ~sessions ?jobs ?guard req =
  let* entry = get_session sessions req in
  let* qs = require req "query" in
  let* q = parse_query qs in
  let* () = well_formed entry.Session.schema q in
  let* tuple = get_tuple req q in
  let* k =
    match Wire.int_field req "k" with
    | Some k when k >= 1 -> Ok k
    | Some _ -> Error (Wire.Bad_request, "k must be >= 1")
    | None -> Error (Wire.Bad_request, "missing field \"k\"")
  in
  let* eps = get_prob req "eps" in
  let* delta = get_prob req "delta" in
  let seed = Option.value ~default:0 (Wire.int_field req "seed") in
  let stratify =
    match Wire.int_field req "stratify" with Some n -> n > 0 | None -> false
  in
  let inst = entry.Session.inst and cache = entry.Session.cache in
  match Wire.str_field req "constraints" with
  | Some _ ->
      let* deps = get_deps entry.Session.schema req in
      let* () = precheck ~deps ~tuple entry.Session.schema inst q in
      let sigma =
        Constraints.Dependency.set_to_formula entry.Session.schema deps
      in
      let r =
        AE.mu_cond_k ?jobs ?guard ~cache ~sigma inst q tuple ~k ~eps ~delta
          ~seed
      in
      Ok
        [ ("estimate", Wire.S (R.to_string r.AE.c_estimate));
          ("ci_lo", Wire.S (R.to_string r.AE.c_ci_lo));
          ("ci_hi", Wire.S (R.to_string r.AE.c_ci_hi));
          ("samples", Wire.I r.AE.c_samples);
          ("seed", Wire.I r.AE.c_seed);
          ("hits_num", Wire.I r.AE.c_hits_num);
          ("hits_den", Wire.I r.AE.c_hits_den)
        ]
  | None ->
      let* () = precheck ~tuple entry.Session.schema inst q in
      let r =
        AE.mu_k ?jobs ?guard ~cache ~stratify inst q tuple ~k ~eps ~delta
          ~seed
      in
      let stratified =
        match r.AE.stratified with
        | None -> []
        | Some s ->
            [ ("stratified", Wire.S (R.to_string s.AE.s_estimate));
              ("stratified_ci_lo", Wire.S (R.to_string s.AE.s_ci_lo));
              ("stratified_ci_hi", Wire.S (R.to_string s.AE.s_ci_hi));
              ("stratified_samples", Wire.I s.AE.s_samples);
              ("strata", Wire.I s.AE.s_strata)
            ]
      in
      Ok
        ([ ("estimate", Wire.S (R.to_string r.AE.estimate));
           ("ci_lo", Wire.S (R.to_string r.AE.ci_lo));
           ("ci_hi", Wire.S (R.to_string r.AE.ci_hi));
           ("samples", Wire.I r.AE.samples);
           ("seed", Wire.I r.AE.seed);
           ("hits", Wire.I r.AE.hits)
         ]
        @ stratified)

(* The update op: mutate a live session by one tuple. The session is
   addressed — like every other op — by the original (schema, db)
   texts; its state drifts away from the db text with each update,
   which is the point: later queries against the same pair see the
   updated instance without re-parsing or re-indexing anything. *)
let run_update ~sessions req =
  let* schema = require req "schema" in
  let* db = require req "db" in
  let* action =
    let* s = require req "action" in
    match s with
    | "insert" -> Ok Session.Insert
    | "delete" -> Ok Session.Delete
    | other ->
        Error
          ( Wire.Bad_request,
            Printf.sprintf "unknown action %S (want insert or delete)" other )
  in
  let* relation = require req "relation" in
  let* tuple =
    let* s = require req "tuple" in
    match Parser.tuple s with
    | Ok t -> Ok t
    | Error msg -> Error (Wire.Bad_request, "tuple: " ^ msg)
  in
  match Session.update sessions ~schema ~db ~action ~relation ~tuple with
  | Error msg -> Error (Wire.Bad_request, msg)
  | Ok (entry, generation) ->
      let inst = entry.Session.inst in
      Ok
        [ ("applied", Wire.S (match action with
             | Session.Insert -> "insert"
             | Session.Delete -> "delete"));
          ("relation", Wire.S relation);
          ("generation", Wire.I generation);
          ( "cardinality",
            Wire.I (Relation.cardinal (Instance.relation inst relation)) );
          ("nulls", Wire.I (Instance.null_count inst))
        ]

let scheme_of_name = function
  | "sql" -> Ok Zeroone.Approx.sql_scheme
  | "naive" -> Ok (fun d q -> Incomplete.Naive.answers d q)
  | "naive-null-free" -> Ok Zeroone.Approx.naive_null_free_scheme
  | other ->
      Error (Wire.Bad_request, Printf.sprintf "unknown scheme %S" other)

let parse_schema s =
  match Parser.schema s with
  | Ok sch -> Ok sch
  | Error msg -> Error (Wire.Bad_request, "schema: " ^ msg)

let run_analyze ~sessions req =
  let has_db = Wire.str_field req "db" <> None in
  let* sch, inst =
    if has_db then
      let* entry = get_session sessions req in
      Ok (entry.Session.schema, Some entry.Session.inst)
    else
      let* s = require req "schema" in
      let* sch = parse_schema s in
      Ok (sch, None)
  in
  let* qs = require req "query" in
  let* q = parse_query qs in
  let* deps =
    match Wire.str_field req "constraints" with
    | None -> Ok None
    | Some _ ->
        let* deps = get_deps sch req in
        Ok (Some deps)
  in
  let* tuple =
    match Wire.str_field req "tuple" with
    | None -> Ok None
    | Some s -> (
        match Parser.tuple s with
        | Ok t -> Ok (Some t)
        | Error msg -> Error (Wire.Bad_request, "tuple: " ^ msg))
  in
  let k = Wire.int_field req "domain_size" in
  let report = Analysis.Report.analyze ?inst ?deps ?tuple ?k sch q in
  let errors =
    Analysis.Diag.count Analysis.Diag.Error (Analysis.Report.all_diags report)
  in
  (* Satellite: the analyze endpoint doubles as the approximation
     grader — with a scheme (and a db to run it on) it reuses the same
     Zeroone.Approx evaluation as 'certainty approx'. *)
  let* approx =
    match Wire.str_field req "scheme" with
    | None -> Ok []
    | Some name -> (
        let* scheme = scheme_of_name name in
        match inst with
        | None ->
            Error (Wire.Bad_request, "grading a scheme needs a \"db\" field")
        | Some inst ->
            let r = Zeroone.Approx.evaluate scheme inst q in
            Ok
              [ ("scheme", Wire.S name);
                ("returned", Wire.S (rel_string r.Zeroone.Approx.returned));
                ("missed", Wire.S (rel_string r.Zeroone.Approx.missed));
                ( "spurious_benign",
                  Wire.S (rel_string r.Zeroone.Approx.spurious_benign) );
                ( "spurious_harmful",
                  Wire.S (rel_string r.Zeroone.Approx.spurious_harmful) );
                ("recall", Wire.S (R.to_string (Zeroone.Approx.recall r)));
                ("precision", Wire.S (R.to_string (Zeroone.Approx.precision r)));
                ("sound", Wire.B (Zeroone.Approx.sound r));
                ("complete", Wire.B (Zeroone.Approx.complete r))
              ])
  in
  Ok
    ([ ("errors", Wire.I errors);
       ("report", Wire.Raw (Analysis.Report.to_json report))
     ]
    @ approx)

let run ~sessions ?jobs ?guard req =
  match req.Wire.op with
  | "certain" -> run_certain ~sessions ?jobs ?guard req
  | "measure" -> run_measure ~sessions ?jobs ?guard req
  | "conditional" -> run_conditional ~sessions ?jobs ?guard req
  | "approx" -> run_approx ~sessions ?jobs ?guard req
  | "analyze" -> run_analyze ~sessions req
  | "update" -> run_update ~sessions req
  | op -> Error (Wire.Unsupported_op, Printf.sprintf "unsupported op %S" op)

let handle ~sessions ?jobs ?guard req =
  match run ~sessions ?jobs ?guard req with
  | outcome -> outcome
  | exception Deadline -> Error (Wire.Deadline_exceeded, "deadline exceeded")
  | exception Arith.Bigint.Overflow size ->
      Error
        ( Wire.Bad_request,
          Printf.sprintf "valuation space of %s valuations; too large"
            (Arith.Bigint.to_string size) )
  | exception e -> Error (Wire.Internal_error, Printexc.to_string e)
