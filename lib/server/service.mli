(** Request execution for the query service.

    [handle] maps one parsed {!Wire.request} to a response payload,
    running the same engine entry points as the CLI subcommands —
    [certain], [measure], [conditional], [analyze] — against a shared
    {!Session} store; the [update] op mutates a session in place by
    one tuple ({!Session.update}), with the kernel db, chase memos and
    verdict cache maintained incrementally rather than rebuilt. It is deliberately transport-free: the daemon
    calls it from worker threads, and [bench --serve] calls it
    directly (with [jobs = 1] and a fresh store) to build the expected
    responses its identity gate compares against. All payload values
    are deterministic strings — exact rationals, polynomials, and
    semicolon-joined tuple lists; never floats or timings — which is
    what makes the bit-identity gate possible.

    Evaluating requests pass the static-analysis precheck gate first:
    analysis errors come back as {!Wire.Analysis_error} with the
    stable diagnostic codes in the message, and no evaluation runs. *)

exception Deadline
(** Raised by the daemon's deadline guards at a valuation-chunk
    boundary; [handle] turns it into {!Wire.Deadline_exceeded},
    discarding the partial count. *)

val handle :
  sessions:Session.t ->
  ?jobs:int ->
  ?guard:(unit -> unit) ->
  Wire.request ->
  ((string * Wire.json) list, Wire.error * string) result
(** Execute one request. [?jobs] is the chunk count handed to the
    parallel sweeps (the server's [--jobs]); [?guard] is threaded into
    every brute-force enumeration. Exceptions do not escape: guard
    aborts map to [Deadline_exceeded], valuation-space overflows to
    [Bad_request], anything else to [Internal_error]. The [health] op
    is served by the daemon, not here — unknown ops (including
    [health]) return [Unsupported_op]. *)
