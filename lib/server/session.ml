module Parser = Logic.Parser

type entry = {
  schema : Relational.Schema.t;
  inst : Relational.Instance.t;
  cache : Incomplete.Support.cache;
}

type t = {
  lock : Mutex.t;
  table : (string * string, entry) Hashtbl.t;
  order : (string * string) Queue.t;  (* insertion order, for FIFO eviction *)
  max_sessions : int;
}

let create ?(max_sessions = 16) () =
  { lock = Mutex.create ();
    table = Hashtbl.create 16;
    order = Queue.create ();
    max_sessions = max 1 max_sessions
  }

let count t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

let load ~schema ~db =
  match Parser.schema schema with
  | Error msg -> Error ("schema: " ^ msg)
  | Ok sch -> (
      match Parser.instance sch db with
      | Error msg -> Error ("db: " ^ msg)
      | Ok inst ->
          Ok { schema = sch; inst; cache = Incomplete.Support.create_cache () })

let get t ~schema ~db =
  let key = (schema, db) in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key) with
  | Some entry -> Ok entry
  | None -> (
      (* Parse outside the lock. Two connections racing on the same new
         pair may both parse; the first insert wins and the loser adopts
         it, so caches are never split across requests. *)
      match load ~schema ~db with
      | Error _ as e -> e
      | Ok fresh ->
          Obs.Metrics.incr Obs.Metrics.serve_session_loads;
          Ok
            (Mutex.protect t.lock (fun () ->
                 match Hashtbl.find_opt t.table key with
                 | Some winner -> winner
                 | None ->
                     Hashtbl.add t.table key fresh;
                     Queue.add key t.order;
                     while Hashtbl.length t.table > t.max_sessions do
                       let victim = Queue.pop t.order in
                       Hashtbl.remove t.table victim;
                       Obs.Metrics.incr Obs.Metrics.serve_session_evictions
                     done;
                     fresh)))
