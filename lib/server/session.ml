module Parser = Logic.Parser
module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Support = Incomplete.Support
module Kernel = Incomplete.Kernel
module Split = Incomplete.Split
module Chase = Constraints.Chase
module Dependency = Constraints.Dependency

type chase_memo =
  Dependency.fd list
  * ((Dependency.fd * Relational.Value.t * Relational.Value.t) list
    * Chase.outcome)

type entry = {
  schema : Relational.Schema.t;
  cache : Incomplete.Support.cache;
  ulock : Mutex.t;
  mutable inst : Relational.Instance.t;
  mutable chase_gen : int;
  mutable chase_memos : chase_memo list;
  mutable last_used : int;
}

type t = {
  lock : Mutex.t;
  table : (string * string, entry) Hashtbl.t;
  mutable clock : int;
  max_sessions : int;
}

let create ?(max_sessions = 16) () =
  { lock = Mutex.create ();
    table = Hashtbl.create 16;
    clock = 0;
    max_sessions = max 1 max_sessions
  }

let count t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

(* Callers hold [t.lock]. *)
let touch t entry =
  t.clock <- t.clock + 1;
  entry.last_used <- t.clock

let evict_over_cap t =
  while Hashtbl.length t.table > t.max_sessions do
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.last_used <= entry.last_used -> acc
          | _ -> Some (key, entry))
        t.table None
    in
    match victim with
    | None -> assert false (* table over cap is non-empty *)
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        Obs.Metrics.incr Obs.Metrics.serve_session_evictions
  done

let load ~schema ~db =
  match Parser.schema schema with
  | Error msg -> Error ("schema: " ^ msg)
  | Ok sch -> (
      match Parser.instance sch db with
      | Error msg -> Error ("db: " ^ msg)
      | Ok inst ->
          Ok
            { schema = sch;
              cache = Incomplete.Support.create_cache ();
              ulock = Mutex.create ();
              inst;
              chase_gen = Instance.generation inst;
              chase_memos = [];
              last_used = 0
            })

let get t ~schema ~db =
  let key = (schema, db) in
  let hit =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry ->
            touch t entry;
            Some entry
        | None -> None)
  in
  match hit with
  | Some entry -> Ok entry
  | None -> (
      (* Parse outside the lock. Two connections racing on the same new
         pair may both parse; the first insert wins and the loser adopts
         it, so caches are never split across requests. Only the winning
         insert counts as a load — the loser's parse produced nothing
         the store keeps. *)
      match load ~schema ~db with
      | Error _ as e -> e
      | Ok fresh ->
          Ok
            (Mutex.protect t.lock (fun () ->
                 match Hashtbl.find_opt t.table key with
                 | Some winner ->
                     touch t winner;
                     winner
                 | None ->
                     Obs.Metrics.incr Obs.Metrics.serve_session_loads;
                     Hashtbl.add t.table key fresh;
                     touch t fresh;
                     evict_over_cap t;
                     fresh)))

(* ------------------------------------------------------------------ *)
(* Single-tuple updates                                                *)
(* ------------------------------------------------------------------ *)

type action = Insert | Delete

let apply entry ~action ~relation ~tuple =
  Mutex.protect entry.ulock @@ fun () ->
  let inst = entry.inst in
  match Relational.Schema.arity_opt entry.schema relation with
  | None -> Error (Printf.sprintf "unknown relation %S" relation)
  | Some arity ->
      if Tuple.arity tuple <> arity then
        Error
          (Printf.sprintf "arity mismatch: %s expects %d values, got %d"
             relation arity (Tuple.arity tuple))
      else begin
        let present = Instance.mem inst relation tuple in
        match action with
        | Insert when present ->
            Error
              (Printf.sprintf "tuple %s already in %s" (Tuple.to_string tuple)
                 relation)
        | Delete when not present ->
            Error
              (Printf.sprintf "tuple %s not in %s" (Tuple.to_string tuple)
                 relation)
        | Insert | Delete ->
            (* Delta-maintain the kernel db (split partition + indexes)
               of the current instance rather than rebuilding either;
               [kernel_db] is a generation-keyed cache hit for every
               update after the first query. *)
            let db = Support.kernel_db ~cache:entry.cache inst in
            let db' =
              match action with
              | Insert -> Kernel.db_insert db ~name:relation ~tuple
              | Delete -> Kernel.db_delete db ~name:relation ~tuple
            in
            let adom_changed =
              let split = Kernel.split db and split' = Kernel.split db' in
              (not
                 (List.equal Int.equal (Split.constants split)
                    (Split.constants split')))
              || not
                   (List.equal Int.equal (Split.nulls split)
                      (Split.nulls split'))
            in
            let inst' = Kernel.instance db' in
            Support.install_kernel_db entry.cache db';
            Support.note_update entry.cache ~rels:[ relation ]
              ~adom_changed;
            (match action with
            | Insert when entry.chase_gen = Instance.generation inst ->
                (* Advance every finished chase by resuming it with the
                   substituted tuple (chase_inc); the memos stay valid
                   for the new generation. *)
                entry.chase_memos <-
                  List.map
                    (fun (fds, prev) ->
                      (fds, Chase.chase_inc fds ~prev ~name:relation ~tuple))
                    entry.chase_memos;
                entry.chase_gen <- Instance.generation inst'
            | Insert | Delete ->
                (* A deletion can retract a forced merge — no shortcut;
                   drop the memos and re-chase lazily on next use. *)
                entry.chase_memos <- [];
                entry.chase_gen <- Instance.generation inst');
            entry.inst <- inst';
            Obs.Metrics.incr Obs.Metrics.serve_updates;
            Ok (Instance.generation inst')
      end

let update t ~schema ~db ~action ~relation ~tuple =
  match get t ~schema ~db with
  | Error msg -> Error msg
  | Ok entry -> (
      match apply entry ~action ~relation ~tuple with
      | Error msg -> Error msg
      | Ok gen -> Ok (entry, gen))

let chase_outcome entry ~inst fds =
  let gen = Instance.generation inst in
  Mutex.protect entry.ulock @@ fun () ->
  if entry.chase_gen = gen then (
    match List.assoc_opt fds entry.chase_memos with
    | Some (_, outcome) -> outcome
    | None ->
        let prev = Chase.trace fds inst in
        entry.chase_memos <- (fds, prev) :: entry.chase_memos;
        snd prev)
  else
    (* The caller's snapshot predates a concurrent update; answer it
       from scratch without touching the memos of the current state. *)
    snd (Chase.trace fds inst)
