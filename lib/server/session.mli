(** The server's session store: parsed databases and their caches.

    A session is keyed by the literal (schema text, database text)
    pair of the request. The first request for a pair parses both and
    creates an {!Incomplete.Support.cache}; every later request for
    the same pair — from any connection — shares the parsed instance,
    the kernel database built inside the cache on first use, and the
    capped verdict cache. This is what makes the server cheaper than
    one CLI process per query: the [k^m]-sweep verdicts accumulate
    across requests.

    Sessions are {e mutable}: the [update] op applies a single-tuple
    insert or delete in place. The kernel database is delta-maintained
    ({!Incomplete.Kernel.db_insert}/[db_delete]) instead of rebuilt,
    finished FD chases are resumed ({!Constraints.Chase.chase_inc})
    instead of re-run, and the verdict cache is invalidated precisely
    — only verdicts that could depend on the touched relation (or, for
    a domain-changing update, on the active domain) are retired. The
    session key stays the {e original} database text: the store is a
    live instance seeded from that text, not a content hash.

    Concurrency: an update swaps [entry.inst] under the entry's lock;
    a query takes one snapshot of [inst] and is internally consistent
    against it — the generation stamp keys every derived structure, so
    a racing update can neither corrupt a running query nor have its
    own state poisoned by one.

    The store holds at most [max_sessions] entries and evicts the
    least recently used — every [get] (hit or load) refreshes a
    session's position, so a hot session survives a burst of one-shot
    ones. {!Obs.Metrics.serve_session_loads} and
    {!Obs.Metrics.serve_session_evictions} count the churn; loads
    count winning inserts only, not parses that lost the race to a
    concurrent connection. *)

type entry = private {
  schema : Relational.Schema.t;
  cache : Incomplete.Support.cache;
  ulock : Mutex.t;  (** serializes updates and chase-memo access *)
  mutable inst : Relational.Instance.t;
      (** current state; read it {e once} per request and evaluate
          against the snapshot *)
  mutable chase_gen : int;
  mutable chase_memos :
    (Constraints.Dependency.fd list
    * ((Constraints.Dependency.fd * Relational.Value.t * Relational.Value.t)
         list
      * Constraints.Chase.outcome))
    list;
  mutable last_used : int;
}

type t

val create : ?max_sessions:int -> unit -> t
(** [max_sessions] defaults to 16 and is clamped to at least 1. *)

val get : t -> schema:string -> db:string -> (entry, string) result
(** Find or load the session for this (schema, db) text pair. Parsing
    happens outside the store lock, so a slow parse does not stall
    other connections; [Error] is a parse diagnostic. *)

val count : t -> int
(** Number of live sessions (for the [health] endpoint). *)

(** {1 Updates} *)

type action = Insert | Delete

val update :
  t ->
  schema:string ->
  db:string ->
  action:action ->
  relation:string ->
  tuple:Relational.Tuple.t ->
  (entry * int, string) result
(** Apply a single-tuple update to the (possibly just-loaded) session,
    returning the entry and the new instance generation. [Error]s:
    unknown relation, arity mismatch, inserting a tuple already
    present, deleting a tuple that is absent — all leave the session
    untouched. *)

val chase_outcome :
  entry ->
  inst:Relational.Instance.t ->
  Constraints.Dependency.fd list ->
  Constraints.Chase.outcome
(** The chase of [inst] (the caller's snapshot of [entry.inst]) with
    [fds], memoized in the entry: the first conditional query for an
    FD set pays the full chase, later ones — including after inserts,
    which advance the memo incrementally — reuse it. A snapshot
    outdated by a concurrent update is chased from scratch without
    disturbing the memo. *)
