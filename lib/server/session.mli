(** The server's session store: parsed databases and their caches.

    A session is keyed by the literal (schema text, database text)
    pair of the request. The first request for a pair parses both and
    creates an {!Incomplete.Support.cache}; every later request for
    the same pair — from any connection — shares the parsed instance,
    the kernel database built inside the cache on first use, and the
    capped verdict cache. This is what makes the server cheaper than
    one CLI process per query: the [k^m]-sweep verdicts accumulate
    across requests.

    The store holds at most [max_sessions] entries and evicts in FIFO
    order; {!Obs.Metrics.serve_session_loads} and
    {!Obs.Metrics.serve_session_evictions} count the churn. *)

type entry = {
  schema : Relational.Schema.t;
  inst : Relational.Instance.t;
  cache : Incomplete.Support.cache;
}

type t

val create : ?max_sessions:int -> unit -> t
(** [max_sessions] defaults to 16 and is clamped to at least 1. *)

val get : t -> schema:string -> db:string -> (entry, string) result
(** Find or load the session for this (schema, db) text pair. Parsing
    happens outside the store lock, so a slow parse does not stall
    other connections; [Error] is a parse diagnostic. *)

val count : t -> int
(** Number of live sessions (for the [health] endpoint). *)
