(* Wire protocol: strict single-line flat-JSON requests, compact
   one-line responses. The parser accepts exactly the documented
   grammar — a flat object of string/integer fields — and reports the
   first offence with its byte position, so malformed traffic gets a
   deterministic [parse_error] message instead of a best-effort
   guess. *)

type value = Str of string | Int of int

type request = {
  id : string option;
  op : string;
  fields : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

type state = { line : string; mutable pos : int }

let peek st = if st.pos < String.length st.line then Some st.line.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.line
    && (match st.line.[st.pos] with ' ' | '\t' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> bad "expected '%c' at byte %d, found '%c'" c st.pos d
  | None -> bad "expected '%c' at byte %d, found end of line" c st.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> bad "invalid hex digit '%c'" c

(* Decode \uXXXX to UTF-8 bytes. Surrogates are rejected: the protocol
   has no surrogate pairs (the emitter only ever escapes bytes below
   0x20), so accepting lone halves would only smuggle in invalid
   UTF-8. *)
let add_unicode st b =
  if st.pos + 4 > String.length st.line then
    bad "truncated \\u escape at byte %d" st.pos;
  let v =
    (hex_digit st.line.[st.pos] lsl 12)
    lor (hex_digit st.line.[st.pos + 1] lsl 8)
    lor (hex_digit st.line.[st.pos + 2] lsl 4)
    lor hex_digit st.line.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  if v >= 0xD800 && v <= 0xDFFF then
    bad "surrogate \\u escape at byte %d" (st.pos - 6);
  if v < 0x80 then Buffer.add_char b (Char.chr v)
  else if v < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> bad "unterminated string at end of line"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> bad "trailing backslash at end of line"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' -> add_unicode st b
            | c -> bad "unknown escape '\\%c' at byte %d" c (st.pos - 2));
            go ())
    | Some c when Char.code c < 0x20 ->
        bad "raw control byte 0x%02x inside string at byte %d" (Char.code c)
          st.pos
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_int st =
  let start = st.pos in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits = ref 0 in
  let rec go () =
    match peek st with
    | Some ('0' .. '9') ->
        incr digits;
        st.pos <- st.pos + 1;
        go ()
    | _ -> ()
  in
  go ();
  if !digits = 0 then bad "expected a value at byte %d" start;
  match int_of_string (String.sub st.line start (st.pos - start)) with
  | n -> n
  | exception _ -> bad "integer out of range at byte %d" start

let parse_value st =
  match peek st with
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> Int (parse_int st)
  | Some c -> bad "expected a string or integer at byte %d, found '%c'" st.pos c
  | None -> bad "expected a value at byte %d, found end of line" st.pos

let parse_request line =
  let st = { line; pos = 0 } in
  match
    skip_ws st;
    expect st '{';
    skip_ws st;
    let fields = ref [] in
    (if peek st = Some '}' then st.pos <- st.pos + 1
     else
       let rec pairs () =
         let key = parse_string st in
         skip_ws st;
         expect st ':';
         skip_ws st;
         let v = parse_value st in
         if List.mem_assoc key !fields then bad "duplicate field %S" key;
         fields := (key, v) :: !fields;
         skip_ws st;
         match peek st with
         | Some ',' ->
             st.pos <- st.pos + 1;
             skip_ws st;
             pairs ()
         | Some '}' -> st.pos <- st.pos + 1
         | Some c -> bad "expected ',' or '}' at byte %d, found '%c'" st.pos c
         | None -> bad "unterminated object at end of line"
       in
       pairs ());
    skip_ws st;
    (match peek st with
    | Some c -> bad "trailing byte '%c' after object at byte %d" c st.pos
    | None -> ());
    List.rev !fields
  with
  | exception Bad msg -> Error msg
  | fields -> (
      let str name =
        match List.assoc_opt name fields with
        | Some (Str s) -> Some s
        | Some (Int n) -> Some (string_of_int n)
        | None -> None
      in
      match str "op" with
      | None -> Error "missing field \"op\""
      | Some op -> Ok { id = str "id"; op; fields })

let str_field r name =
  match List.assoc_opt name r.fields with
  | Some (Str s) -> Some s
  | Some (Int n) -> Some (string_of_int n)
  | None -> None

let int_field r name =
  match List.assoc_opt name r.fields with
  | Some (Int n) -> Some n
  | Some (Str s) -> int_of_string_opt s
  | None -> None

(* ------------------------------------------------------------------ *)
(* Response emission                                                   *)
(* ------------------------------------------------------------------ *)

type json = S of string | I of int | B of bool | Raw of string

type error =
  | Parse_error
  | Bad_request
  | Unsupported_op
  | Analysis_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Shard_unavailable
  | Internal_error

let error_code = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unsupported_op -> "unsupported_op"
  | Analysis_error -> "analysis_error"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Shard_unavailable -> "shard_unavailable"
  | Internal_error -> "internal_error"

let obj fields =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Obs.Json.add_escaped b k;
      Buffer.add_string b "\":";
      match v with
      | S s ->
          Buffer.add_char b '"';
          Obs.Json.add_escaped b s;
          Buffer.add_char b '"'
      | I n -> Buffer.add_string b (string_of_int n)
      | B v -> Buffer.add_string b (if v then "true" else "false")
      | Raw s -> Buffer.add_string b s)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let id_prefix id = match id with None -> [] | Some id -> [ ("id", S id) ]

let ok_line ~id ~op payload =
  obj (id_prefix id @ [ ("ok", B true); ("op", S op) ] @ payload)

let error_line ~id err msg =
  obj
    (id_prefix id
    @ [ ("ok", B false); ("error", S (error_code err)); ("message", S msg) ])
