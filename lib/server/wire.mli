(** The query service's wire protocol: newline-delimited JSON.

    A client sends one request per line — a {e flat} JSON object whose
    values are strings or integers (no nesting, no floats, no
    booleans); the server answers with exactly one JSON object line
    per request, in request order. The full schema is specified in
    [docs/PROTOCOL.md].

    Requests are parsed with a strict single-line parser (the same
    spirit as {!Obs.Trace}'s validator: reject anything unexpected
    rather than accept all of JSON); responses are emitted with
    {!Obs.Json} escaping, so every line the server writes is parseable
    by the same reader. *)

(** {1 Requests} *)

type value = Str of string | Int of int

type request = {
  id : string option;  (** echoed verbatim in the response *)
  op : string;
      (** [certain], [measure], [conditional], [approx], [analyze],
          [health] *)
  fields : (string * value) list;  (** every field, including [op]/[id] *)
}

val parse_request : string -> (request, string) result
(** Parse one request line. The grammar: a single flat JSON object;
    keys are strings; values are strings (with the standard escapes —
    [\uXXXX] is decoded to UTF-8, surrogates rejected) or integers;
    whitespace between tokens is allowed; duplicate keys and trailing
    bytes are errors. [Error msg] is a deterministic description of
    the first offence. *)

val str_field : request -> string -> string option
(** String value of a field (integers are read back as their digits). *)

val int_field : request -> string -> int option
(** Integer value of a field (strings holding digits are accepted). *)

(** {1 Responses} *)

type json =
  | S of string  (** JSON string, escaped on emission *)
  | I of int
  | B of bool
  | Raw of string  (** pre-rendered JSON, embedded verbatim *)

type error =
  | Parse_error  (** the request line is not a well-formed request *)
  | Bad_request  (** well-formed, but fields are missing or invalid *)
  | Unsupported_op
  | Analysis_error  (** the static-analysis gate rejected the query *)
  | Overloaded  (** admission queue full — load shed, retry later *)
  | Deadline_exceeded  (** partial work discarded *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Shard_unavailable
      (** router tier only: no live backend shard can serve the
          session right now — retry after the prober re-admits one *)
  | Internal_error

val error_code : error -> string
(** The stable wire identifier, e.g. ["deadline_exceeded"]. *)

val obj : (string * json) list -> string
(** One compact JSON object (no trailing newline). *)

val ok_line : id:string option -> op:string -> (string * json) list -> string
(** [{"id":…,"ok":true,"op":…,…payload}] *)

val error_line : id:string option -> error -> string -> string
(** [{"id":…,"ok":false,"error":…,"message":…}] *)
