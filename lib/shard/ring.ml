(* FNV-1a over the bytes, avalanched with the murmur3 finalizer and
   folded to a nonnegative 62-bit int. The ring only needs a
   well-spread deterministic hash — not a cryptographic one — but raw
   FNV is not it: its high bits barely avalanche, so similar short
   keys ("a#0", "a#1", ...) cluster into a few arcs and one shard ends
   up owning half the circle. The finalizer's two xor-shift/multiply
   rounds fix exactly that, and keep the whole thing dependency-free. *)
let hash64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let mix = Int64.logxor !h (Int64.shift_right_logical !h 33) in
  let mix = Int64.mul mix 0xff51afd7ed558ccdL in
  let mix = Int64.logxor mix (Int64.shift_right_logical mix 33) in
  let mix = Int64.mul mix 0xc4ceb9fe1a85ec53L in
  let mix = Int64.logxor mix (Int64.shift_right_logical mix 33) in
  Int64.to_int (Int64.shift_right_logical mix 2) land max_int

type t = {
  points : (int * int) array;  (* (point hash, shard index), sorted *)
  nshards : int;
}

let create ?(vnodes = 64) names =
  let nshards = Array.length names in
  if nshards = 0 then invalid_arg "Ring.create: no shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be positive";
  let pts = ref [] in
  Array.iteri
    (fun i name ->
      for v = 0 to vnodes - 1 do
        pts := (hash64 (Printf.sprintf "%s#%d" name v), i) :: !pts
      done)
    names;
  let points = Array.of_list !pts in
  (* Ties (identical point hashes) resolve by shard index — still
     deterministic across processes. *)
  Array.sort compare points;
  { points; nshards }

let nshards t = t.nshards

(* First point at or clockwise of [h]; wraps to 0 past the end. *)
let first_at t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let successors t ~up ~n key =
  let npts = Array.length t.points in
  let start = first_at t (hash64 key) in
  let rec go steps acc count =
    if steps >= npts || count >= n then List.rev acc
    else
      let _, s = t.points.((start + steps) mod npts) in
      if (not (List.mem s acc)) && up s then
        go (steps + 1) (s :: acc) (count + 1)
      else go (steps + 1) acc count
  in
  if n <= 0 then [] else go 0 [] 0

let lookup t ~up key =
  match successors t ~up ~n:1 key with [] -> None | s :: _ -> Some s
