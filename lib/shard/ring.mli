(** Consistent-hash ring over a fixed set of configured shards.

    The ring is built once, from {e every} configured shard: each
    shard owns [vnodes] pseudo-random points on a 62-bit circle, and a
    session key is served by the first point clockwise from its hash.
    Liveness is {e not} baked into the ring — lookups take an [up]
    predicate and walk past points owned by down shards. That is what
    makes membership changes minimally disruptive: ejecting a shard
    remaps only the arcs it owned (keys whose walk never met the shard
    keep their assignment, bit for bit), and re-admission restores
    exactly the original mapping. *)

type t

val create : ?vnodes:int -> string array -> t
(** Build the ring from the configured shard names (index [i] in the
    array is the shard's identity everywhere else). Deterministic: the
    same names yield the same ring in every process. Default 64
    virtual nodes per shard.
    @raise Invalid_argument on an empty array. *)

val nshards : t -> int

val successors : t -> up:(int -> bool) -> n:int -> string -> int list
(** The first [n] {e distinct} live shards clockwise from the key's
    point, in ring order — position 0 is the key's primary, the rest
    its replica candidates. Fewer than [n] (possibly none) when the
    ring is short of live shards. *)

val lookup : t -> up:(int -> bool) -> string -> int option
(** [successors ~n:1], the key's current primary. *)

val hash64 : string -> int
(** The ring's point hash (FNV-1a folded to 62 bits, nonnegative) —
    exposed for tests. *)
