module Daemon = Server.Daemon
module Client = Server.Client
module Wire = Server.Wire
module Metrics = Obs.Metrics

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  addr : Daemon.addr;
  shards : Daemon.addr array;
  replicas : int;
  window : int;
  fail_threshold : int;
  probe_interval_s : float;
  shard_timeout_s : float;
  connect_attempts : int;
  drain_grace_s : float;
}

let default_config ~addr ~shards =
  { addr;
    shards = Array.of_list shards;
    replicas = 1;
    window = 32;
    fail_threshold = 3;
    probe_interval_s = 0.25;
    shard_timeout_s = 30.0;
    connect_attempts = 3;
    drain_grace_s = 30.0
  }

(* "host:port" with a numeric port and no slash is TCP; anything else
   is a Unix socket path (so "./srv.sock" and "/tmp/a:b" both work). *)
let parse_addr s =
  if s = "" then Error "empty shard address"
  else
    match String.rindex_opt s ':' with
    | Some i when i > 0 && i < String.length s - 1 -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && not (String.contains host '/') ->
            Ok (Daemon.Tcp (host, p))
        | _ -> Ok (Daemon.Unix_sock s))
    | _ -> Ok (Daemon.Unix_sock s)

(* Protocol limit, same as the daemon's reader. *)
let max_line_bytes = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

(* One backend shard. [s_lock]/[s_cond] guard every mutable field; the
   in-flight window blocks on the condition. [s_generation] is the
   value last reported by the shard's health op — when it changes
   behind the same address the shard restarted and lost its sessions,
   so pooled connections are dropped and per-session replay state
   keyed by the old generation goes stale by construction. *)
type shard = {
  s_idx : int;
  s_name : string;
  s_addr : Daemon.addr;
  s_lock : Mutex.t;
  s_cond : Condition.t;
  mutable s_up : bool;
  mutable s_generation : int;  (* 0 = never probed successfully *)
  mutable s_failures : int;  (* consecutive probe failures *)
  mutable s_idle : Client.conn list;
  mutable s_busy : Client.conn list;
  mutable s_inflight : int;
  mutable s_draining : bool;
}

(* Per-session replication state, created lazily on the first accepted
   [update]. The ordered log of accepted update lines is the session's
   write history: any shard (replica, remapped primary, restarted
   primary) is brought to the present by replaying the suffix it has
   not seen, tracked per (shard, generation). Read-only sessions never
   allocate one of these — backends materialize them from the request
   text on demand. *)
type session = {
  sn_lock : Mutex.t;
  mutable sn_log : string list;  (* accepted update lines, newest first *)
  mutable sn_len : int;
  mutable sn_applied : ((int * int) * int) list;
      (* (shard index, shard generation) -> prefix length applied *)
}

(* A downstream client connection. Requests on one connection are
   handled serially by its reader thread, which preserves the wire
   protocol's response ordering without a reorder buffer. *)
type cconn = {
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wlock : Mutex.t;
  mutable c_closed : bool;
}

type t = {
  cfg : config;
  ring : Ring.t;
  shards : shard array;
  sessions : (string, session) Hashtbl.t;
  sess_lock : Mutex.t;
  rr_tick : int Atomic.t;  (* spreads reads over replica sets *)
  draining : bool Atomic.t;
  stop_prober : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  listen_fd : Unix.file_descr;
  sock_path : string option;
  lock : Mutex.t;  (* [conns] and [readers] *)
  mutable conns : cconn list;
  mutable readers : Thread.t list;
  mutable prober : Thread.t option;
  mutable listener : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let resp_ok resp = contains resp "\"ok\":true"

(* A shard that answers [shutting_down] is mid-drain: the line is a
   valid response, but relaying it would leak tier topology to the
   client — the contract is that backends failing over is the
   router's problem. Treat it like a transport failure and move on. *)
let resp_shutting_down resp = contains resp "\"error\":\"shutting_down\""

(* Pull an integer field out of a response line. Responses are our own
   emitter's output, so a plain scan for the key is exact enough. *)
let int_of_resp resp key =
  let pat = "\"" ^ key ^ "\":" in
  let nh = String.length resp and np = String.length pat in
  let rec find i =
    if i + np > nh then None
    else if String.sub resp i np = pat then Some (i + np)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
      let k = ref j in
      while !k < nh && (match resp.[!k] with '0' .. '9' -> true | _ -> false) do
        incr k
      done;
      if !k = j then None else int_of_string_opt (String.sub resp j (!k - j))

let rec firstn n l =
  if n <= 0 then [] else match l with [] -> [] | x :: r -> x :: firstn (n - 1) r

let rotate k l =
  let n = List.length l in
  if n = 0 then []
  else
    let k = ((k mod n) + n) mod n in
    let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
    drop k l @ firstn k l

let session_key ~schema ~db = schema ^ "\x00" ^ db

let now_ns () = Int64.to_int (Obs.Clock.now_ns ())

(* ------------------------------------------------------------------ *)
(* Shard connection pool                                               *)
(* ------------------------------------------------------------------ *)

let drop_idle sh =
  let idle =
    Mutex.protect sh.s_lock (fun () ->
        let l = sh.s_idle in
        sh.s_idle <- [];
        l)
  in
  List.iter
    (fun c ->
      Client.shutdown c;
      Client.close c)
    idle

(* Borrow a connection to [sh], blocking while the shard's in-flight
   window is full. [None] when the shard is down, draining, or cannot
   be connected within the (short, backed-off) attempt budget. *)
let checkout t sh =
  Mutex.lock sh.s_lock;
  let rec go () =
    if sh.s_draining || not sh.s_up then begin
      Mutex.unlock sh.s_lock;
      None
    end
    else if sh.s_inflight >= t.cfg.window then begin
      Condition.wait sh.s_cond sh.s_lock;
      go ()
    end
    else begin
      sh.s_inflight <- sh.s_inflight + 1;
      let pooled =
        match sh.s_idle with
        | c :: rest ->
            sh.s_idle <- rest;
            sh.s_busy <- c :: sh.s_busy;
            Some c
        | [] -> None
      in
      Mutex.unlock sh.s_lock;
      match pooled with
      | Some c -> Some c
      | None -> (
          match
            Client.connect_retry ~attempts:t.cfg.connect_attempts ~delay:0.02
              ~cap:0.2 sh.s_addr
          with
          | c ->
              Client.set_timeout c t.cfg.shard_timeout_s;
              Mutex.protect sh.s_lock (fun () -> sh.s_busy <- c :: sh.s_busy);
              Some c
          | exception (Unix.Unix_error _ | Failure _) ->
              Mutex.protect sh.s_lock (fun () ->
                  sh.s_inflight <- sh.s_inflight - 1;
                  Condition.signal sh.s_cond);
              None)
    end
  in
  go ()

let checkin sh conn ~ok =
  Mutex.protect sh.s_lock (fun () ->
      sh.s_busy <- List.filter (fun c -> c != conn) sh.s_busy;
      sh.s_inflight <- sh.s_inflight - 1;
      if ok && sh.s_up && not sh.s_draining then sh.s_idle <- conn :: sh.s_idle
      else begin
        Client.shutdown conn;
        Client.close conn
      end;
      Condition.signal sh.s_cond)

(* One request/response round trip; [None] on any transport failure
   (the connection must then be checked in with [~ok:false]). *)
let talk conn line =
  Metrics.incr Metrics.router_forwards;
  match Client.request conn line with
  | resp -> resp
  | exception Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* Session catch-up (write forwarding and replay)                      *)
(* ------------------------------------------------------------------ *)

(* Bring [sh] up to date with the session's accepted-update log over
   [conn]. Caller holds [sn_lock]. Replay is idempotent per shard
   generation: the applied prefix length is tracked per (shard,
   generation), so a restarted shard (fresh generation) replays from
   zero while a caught-up one replays nothing. *)
let ensure_synced sess sh conn =
  let gen = Mutex.protect sh.s_lock (fun () -> sh.s_generation) in
  let k = (sh.s_idx, gen) in
  let have =
    match List.assoc_opt k sess.sn_applied with Some n -> n | None -> 0
  in
  if have >= sess.sn_len then true
  else
    let to_replay = List.rev (firstn (sess.sn_len - have) sess.sn_log) in
    let ok =
      List.for_all
        (fun l -> match talk conn l with Some r -> resp_ok r | None -> false)
        to_replay
    in
    if ok then
      sess.sn_applied <-
        (k, sess.sn_len)
        :: List.filter (fun ((i, _), _) -> i <> sh.s_idx) sess.sn_applied;
    ok

let find_session t key =
  Mutex.protect t.sess_lock (fun () -> Hashtbl.find_opt t.sessions key)

let get_session t key =
  Mutex.protect t.sess_lock (fun () ->
      match Hashtbl.find_opt t.sessions key with
      | Some s -> s
      | None ->
          let s =
            { sn_lock = Mutex.create ();
              sn_log = [];
              sn_len = 0;
              sn_applied = []
            }
          in
          Hashtbl.add t.sessions key s;
          s)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let live_mask t =
  Array.map
    (fun sh -> Mutex.protect sh.s_lock (fun () -> sh.s_up && not sh.s_draining))
    t.shards

let candidates t key =
  let mask = live_mask t in
  Ring.successors t.ring ~up:(Array.get mask) ~n:(max 1 t.cfg.replicas) key

let unavailable ~id msg =
  Metrics.incr Metrics.router_shard_unavailable;
  Wire.error_line ~id Wire.Shard_unavailable msg

(* One shard conversation for a read: sync the session's updates in if
   it has any, then proxy the request line verbatim. *)
let read_on_shard sess_opt sh conn line =
  let synced =
    match sess_opt with
    | None -> true
    | Some sess -> Mutex.protect sess.sn_lock (fun () -> ensure_synced sess sh conn)
  in
  if not synced then None
  else
    match talk conn line with
    | Some resp when resp_shutting_down resp -> None
    | r -> r

let route_read t ~id ~key line =
  match candidates t key with
  | [] -> unavailable ~id "no live shard for session"
  | cands ->
      let order = rotate (Atomic.fetch_and_add t.rr_tick 1) cands in
      let sess = find_session t key in
      let rec go tried = function
        | [] ->
            unavailable ~id
              (Printf.sprintf "no replica reachable (%d tried)" tried)
        | i :: rest -> (
            if tried > 0 then Metrics.incr Metrics.router_retries;
            let sh = t.shards.(i) in
            match checkout t sh with
            | None -> go (tried + 1) rest
            | Some conn -> (
                let t0 = now_ns () in
                match read_on_shard sess sh conn line with
                | Some resp ->
                    checkin sh conn ~ok:true;
                    Metrics.observe_span
                      ("router.shard." ^ sh.s_name)
                      (now_ns () - t0);
                    resp
                | None ->
                    checkin sh conn ~ok:false;
                    go (tried + 1) rest))
      in
      go 0 order

(* Writes: catch the primary up, apply there, and only on an accepted
   response append the line to the session log and forward it (by the
   same catch-up) to the replicas that are reachable right now — all
   under the session lock, so updates to one session are totally
   ordered and every replica applies the same accepted prefix in the
   same order. Replicas missed here (down, restarting) are caught up
   lazily by the next read or write that touches them. *)
let route_update t ~id ~key line =
  let sess = get_session t key in
  Mutex.protect sess.sn_lock (fun () ->
      match candidates t key with
      | [] -> unavailable ~id "no live shard for session"
      | primary :: replicas -> (
          let sh = t.shards.(primary) in
          match checkout t sh with
          | None -> unavailable ~id "primary shard unavailable"
          | Some conn ->
              if not (ensure_synced sess sh conn) then begin
                checkin sh conn ~ok:false;
                unavailable ~id "primary shard unavailable"
              end
              else begin
                let t0 = now_ns () in
                match talk conn line with
                | None ->
                    checkin sh conn ~ok:false;
                    unavailable ~id "primary shard failed mid-update"
                | Some resp when resp_shutting_down resp ->
                    checkin sh conn ~ok:false;
                    unavailable ~id "primary shard is draining"
                | Some resp ->
                    checkin sh conn ~ok:true;
                    Metrics.observe_span
                      ("router.shard." ^ sh.s_name)
                      (now_ns () - t0);
                    if resp_ok resp then begin
                      sess.sn_log <- line :: sess.sn_log;
                      sess.sn_len <- sess.sn_len + 1;
                      let gen =
                        Mutex.protect sh.s_lock (fun () -> sh.s_generation)
                      in
                      sess.sn_applied <-
                        ((primary, gen), sess.sn_len)
                        :: List.filter
                             (fun ((i, _), _) -> i <> primary)
                             sess.sn_applied;
                      List.iter
                        (fun r ->
                          let rsh = t.shards.(r) in
                          match checkout t rsh with
                          | None -> ()
                          | Some rc ->
                              let ok = ensure_synced sess rsh rc in
                              if ok then
                                Metrics.incr Metrics.router_replica_forwards;
                              checkin rsh rc ~ok)
                        replicas
                    end;
                    resp
              end))

(* ------------------------------------------------------------------ *)
(* Router health                                                       *)
(* ------------------------------------------------------------------ *)

let health_line t ~id =
  let up = ref 0 in
  let parts =
    Array.to_list t.shards
    |> List.map (fun sh ->
           let state =
             Mutex.protect sh.s_lock (fun () ->
                 if sh.s_up then begin
                   incr up;
                   "up"
                 end
                 else "down")
           in
           sh.s_name ^ "=" ^ state)
  in
  let sessions = Mutex.protect t.sess_lock (fun () -> Hashtbl.length t.sessions) in
  Wire.ok_line ~id ~op:"health"
    [ ( "status",
        Wire.S (if Atomic.get t.draining then "draining" else "serving") );
      ("tier", Wire.S "router");
      ("shards", Wire.I (Array.length t.shards));
      ("shards_up", Wire.I !up);
      ("replicas", Wire.I t.cfg.replicas);
      ("sessions", Wire.I sessions);
      ("shard_status", Wire.S (String.concat " " parts))
    ]

(* ------------------------------------------------------------------ *)
(* Downstream connections                                              *)
(* ------------------------------------------------------------------ *)

let cc_send cc line =
  Mutex.protect cc.c_wlock (fun () ->
      if not cc.c_closed then
        try
          output_string cc.c_oc line;
          output_char cc.c_oc '\n';
          flush cc.c_oc
        with Sys_error _ -> (
          try Unix.shutdown cc.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ()))

let close_cconn cc =
  Mutex.protect cc.c_wlock (fun () ->
      if not cc.c_closed then begin
        cc.c_closed <- true;
        (try flush cc.c_oc with Sys_error _ -> ());
        try Unix.close cc.c_fd with Unix.Unix_error _ -> ()
      end)

let handle_line t cc line =
  Metrics.incr Metrics.router_requests;
  match Wire.parse_request line with
  | Error msg -> cc_send cc (Wire.error_line ~id:None Wire.Parse_error msg)
  | Ok req when req.Wire.op = "health" ->
      cc_send cc (health_line t ~id:req.Wire.id)
  | Ok req when Atomic.get t.draining ->
      cc_send cc
        (Wire.error_line ~id:req.Wire.id Wire.Shutting_down
           "router is draining")
  | Ok req ->
      let id = req.Wire.id in
      let schema = Option.value (Wire.str_field req "schema") ~default:"" in
      let db = Option.value (Wire.str_field req "db") ~default:"" in
      let key = session_key ~schema ~db in
      let t0 = now_ns () in
      let resp =
        Obs.Trace.span "router.request"
          ~attrs:
            [ ("op", req.Wire.op);
              ("id", match id with Some i -> i | None -> "")
            ]
          (fun () ->
            if req.Wire.op = "update" then route_update t ~id ~key line
            else route_read t ~id ~key line)
      in
      Metrics.observe_span "router.request" (now_ns () - t0);
      cc_send cc resp

let read_request_line cc =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char cc.c_ic with
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= max_line_bytes then `Too_long
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | exception Sys_error _ -> `Eof
  in
  go ()

let reader_loop t cc =
  let rec loop () =
    match read_request_line cc with
    | `Eof -> ()
    | `Line "" -> loop ()
    | `Line line ->
        handle_line t cc line;
        loop ()
    | `Too_long ->
        Metrics.incr Metrics.router_requests;
        cc_send cc
          (Wire.error_line ~id:None Wire.Parse_error
             (Printf.sprintf
                "request line exceeds %d bytes; closing connection"
                max_line_bytes))
  in
  loop ();
  close_cconn cc;
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun c -> c != cc) t.conns)

(* ------------------------------------------------------------------ *)
(* Health-gated membership                                             *)
(* ------------------------------------------------------------------ *)

let probe_request = Wire.obj [ ("id", Wire.S "probe"); ("op", Wire.S "health") ]

let probe_shard t sh =
  match Client.connect sh.s_addr with
  | exception (Unix.Unix_error _ | Failure _) -> None
  | conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          Client.set_timeout conn (Float.min 2.0 t.cfg.shard_timeout_s);
          match Client.request conn probe_request with
          | Some resp when resp_ok resp -> int_of_resp resp "generation"
          | Some _ | None -> None
          | exception Sys_error _ -> None)

let note_probe_ok sh gen =
  let change =
    Mutex.protect sh.s_lock (fun () ->
        sh.s_failures <- 0;
        let was_up = sh.s_up and old_gen = sh.s_generation in
        sh.s_up <- true;
        sh.s_generation <- gen;
        if not was_up then `Readmitted
        else if old_gen <> 0 && old_gen <> gen then `Restarted
        else `Steady)
  in
  match change with
  | `Steady -> ()
  | `Readmitted | `Restarted ->
      (* Either way the pooled connections point at a process that is
         gone; per-session replay state keyed by the old generation is
         stale by construction and will be rebuilt on first touch. *)
      Metrics.incr Metrics.router_ring_remaps;
      drop_idle sh

let note_probe_failure t sh =
  Metrics.incr Metrics.router_probe_failures;
  let ejected =
    Mutex.protect sh.s_lock (fun () ->
        sh.s_failures <- sh.s_failures + 1;
        if sh.s_up && sh.s_failures >= t.cfg.fail_threshold then begin
          sh.s_up <- false;
          Condition.broadcast sh.s_cond;
          true
        end
        else false)
  in
  if ejected then begin
    Metrics.incr Metrics.router_ring_remaps;
    drop_idle sh
  end

let prober_loop t =
  while not (Atomic.get t.stop_prober) do
    Array.iter
      (fun sh ->
        if not (Atomic.get t.stop_prober) then
          match probe_shard t sh with
          | Some gen -> note_probe_ok sh gen
          | None -> note_probe_failure t sh)
      t.shards;
    (* Sleep in short slices so drain does not wait a full interval. *)
    let slept = ref 0.0 in
    while !slept < t.cfg.probe_interval_s && not (Atomic.get t.stop_prober) do
      Thread.delay 0.02;
      slept := !slept +. 0.02
    done
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_listener addr =
  match addr with
  | Daemon.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Some path)
  | Daemon.Tcp (host, port) ->
      let ip = Daemon.resolve_ipv4 host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, None)

let accept_one t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      let cc =
        { c_fd = fd;
          c_ic = Unix.in_channel_of_descr fd;
          c_oc = Unix.out_channel_of_descr fd;
          c_wlock = Mutex.create ();
          c_closed = false
        }
      in
      let thread = Thread.create (fun () -> reader_loop t cc) () in
      Mutex.protect t.lock (fun () ->
          t.conns <- cc :: t.conns;
          t.readers <- thread :: t.readers)
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _) ->
      ()

(* Rolling drain: stop accepting (new requests already get
   [shutting_down]), then walk the shards one at a time, waiting up to
   the grace period for each one's in-flight window to empty before
   closing its pool — so backends never see a thundering hang-up and
   at most one shard's arc is in teardown at any moment. *)
let drain_shutdown t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    t.sock_path;
  Atomic.set t.stop_prober true;
  Array.iter
    (fun sh ->
      Mutex.lock sh.s_lock;
      sh.s_draining <- true;
      Condition.broadcast sh.s_cond;
      let deadline = Unix.gettimeofday () +. t.cfg.drain_grace_s in
      while sh.s_inflight > 0 && Unix.gettimeofday () < deadline do
        Mutex.unlock sh.s_lock;
        Thread.delay 0.02;
        Mutex.lock sh.s_lock
      done;
      let idle = sh.s_idle and busy = sh.s_busy in
      sh.s_idle <- [];
      Mutex.unlock sh.s_lock;
      List.iter
        (fun c ->
          Client.shutdown c;
          Client.close c)
        idle;
      (* Busy connections still belong to a reader mid-conversation:
         shut them down (which unblocks the reader) but let the
         borrower close them at check-in. *)
      List.iter Client.shutdown busy)
    t.shards;
  let conns = Mutex.protect t.lock (fun () -> t.conns) in
  List.iter
    (fun cc ->
      try Unix.shutdown cc.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns

let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | readable, _, _ ->
          if List.mem t.wake_r readable then ()
          else begin
            if List.mem t.listen_fd readable then accept_one t;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  drain_shutdown t

let start_common (cfg : config) =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if Array.length cfg.shards = 0 then
    invalid_arg "Router.start: no shards configured";
  if cfg.replicas < 1 then invalid_arg "Router.start: replicas must be >= 1";
  let shards =
    Array.mapi
      (fun i addr ->
        { s_idx = i;
          s_name = Daemon.addr_string addr;
          s_addr = addr;
          s_lock = Mutex.create ();
          s_cond = Condition.create ();
          s_up = false;
          s_generation = 0;
          s_failures = 0;
          s_idle = [];
          s_busy = [];
          s_inflight = 0;
          s_draining = false
        })
      cfg.shards
  in
  let ring = Ring.create (Array.map (fun sh -> sh.s_name) shards) in
  let listen_fd, sock_path = bind_listener cfg.addr in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { cfg;
      ring;
      shards;
      sessions = Hashtbl.create 64;
      sess_lock = Mutex.create ();
      rr_tick = Atomic.make 0;
      draining = Atomic.make false;
      stop_prober = Atomic.make false;
      wake_r;
      wake_w;
      listen_fd;
      sock_path;
      lock = Mutex.create ();
      conns = [];
      readers = [];
      prober = None;
      listener = None
    }
  in
  (* A synchronous first pass, so a router started after its shards
     serves immediately instead of rejecting until the first tick. *)
  Array.iter
    (fun sh ->
      match probe_shard t sh with
      | Some gen ->
          Mutex.protect sh.s_lock (fun () ->
              sh.s_up <- true;
              sh.s_generation <- gen)
      | None -> Metrics.incr Metrics.router_probe_failures)
    t.shards;
  t.prober <- Some (Thread.create (fun () -> prober_loop t) ());
  t

let start cfg =
  let t = start_common cfg in
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  t

let drain t =
  if not (Atomic.exchange t.draining true) then
    ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)

let wait t =
  Option.iter Thread.join t.listener;
  Option.iter Thread.join t.prober;
  let readers = Mutex.protect t.lock (fun () -> t.readers) in
  List.iter Thread.join readers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* Like [Daemon.run]: keep the accept loop on the calling thread so an
   OCaml-level signal handler always has a poll point to run at. *)
let run ?(signals = true) cfg =
  let t = start_common cfg in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    ignore (Sys.signal Sys.sigterm handler);
    ignore (Sys.signal Sys.sigint handler)
  end;
  listener_loop t;
  wait t

(* ------------------------------------------------------------------ *)
(* Introspection (tests, bench)                                        *)
(* ------------------------------------------------------------------ *)

let shard_names t = Array.map (fun sh -> sh.s_name) t.shards

let live_shards t =
  let mask = live_mask t in
  Array.to_list t.shards
  |> List.filter_map (fun sh -> if mask.(sh.s_idx) then Some sh.s_name else None)

let replica_set t ~schema ~db =
  let mask = live_mask t in
  Ring.successors t.ring ~up:(Array.get mask)
    ~n:(max 1 t.cfg.replicas)
    (session_key ~schema ~db)
  |> List.map (fun i -> t.shards.(i).s_name)

let primary_of t ~schema ~db =
  match replica_set t ~schema ~db with [] -> None | s :: _ -> Some s
