(** The sharded serving tier's front router.

    A router is a process that speaks the daemon's wire protocol to
    clients (one flat-JSON request per line, one response line per
    request, in order — see [docs/PROTOCOL.md]) and owns no engine of
    its own: every evaluating request is consistent-hashed by its
    [(schema, db)] session key onto a {!Ring} of backend shards — each
    a stock [certainty serve] daemon — and the client's request line
    is proxied {e verbatim} over a pooled {!Server.Client} connection,
    the shard's response line relayed back untouched. Proxying bytes,
    not re-encoding, is what makes the byte-identity gate against a
    single-process [Service.handle] hold by construction.

    Membership is health-gated: a prober thread polls every shard's
    [health] op each [probe_interval_s]; [fail_threshold] consecutive
    failures eject a shard (remapping only its ring arcs — see
    {!Ring}), one success re-admits it. The [generation] field of the
    health response detects a shard that restarted behind the same
    address: its pooled connections are dropped and its per-session
    replay state is invalidated (the state is keyed by generation, so
    invalidation is free).

    Reads on a session spread round-robin over the key's [replicas]
    first live ring successors and fail over to the next replica on a
    transport error. Writes ([update]) go to the key's primary; on an
    accepted response the raw line is appended to the session's
    ordered update log and forwarded to the replicas — a per-session
    sequence (the applied prefix length, tracked per shard generation)
    lets the router catch any shard up by replaying exactly the suffix
    it has not seen, which is also how a remapped or restarted shard
    resumes byte-identical service after failover.

    Requests that cannot reach any live replica are answered with the
    typed [shard_unavailable] error — never a hang (shard
    conversations are bounded by [shard_timeout_s]) and never a wrong
    answer. [health] is answered by the router itself, reporting
    membership. Draining walks the shards one at a time, each bounded
    by [drain_grace_s]. *)

type config = {
  addr : Server.Daemon.addr;  (** where the router listens *)
  shards : Server.Daemon.addr array;  (** the configured backend ring *)
  replicas : int;  (** live ring successors serving each session's reads *)
  window : int;  (** per-shard in-flight request bound *)
  fail_threshold : int;  (** consecutive probe failures before ejection *)
  probe_interval_s : float;
  shard_timeout_s : float;  (** per-conversation send/receive bound *)
  connect_attempts : int;  (** backed-off connect attempts per checkout *)
  drain_grace_s : float;  (** per-shard wait during rolling drain *)
}

val default_config :
  addr:Server.Daemon.addr -> shards:Server.Daemon.addr list -> config
(** 1 replica, window 32, 3 failures to eject, 0.25s probe interval,
    30s shard timeout, 3 connect attempts, 30s drain grace. *)

val parse_addr : string -> (Server.Daemon.addr, string) result
(** Parse a [--shard] operand: ["host:port"] (numeric port, no slash
    in the host part) is TCP, anything else a Unix socket path. *)

type t

val start : config -> t
(** Bind, run one synchronous probe pass over the shards (so a router
    started after its backends serves immediately), then spawn the
    listener and prober threads and return.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Invalid_argument on an empty shard list or [replicas < 1]. *)

val drain : t -> unit
(** Begin the rolling drain; idempotent, safe from signal handlers. *)

val wait : t -> unit
(** Block until fully shut down. Call {!drain} first. *)

val run : ?signals:bool -> config -> unit
(** [start], install SIGTERM/SIGINT handlers that {!drain} (unless
    [~signals:false]), then {!wait}. The [certainty router] main
    loop. *)

(** {1 Introspection}

    For tests and the bench harness — which shard a session maps to
    right now, under the current membership. *)

val shard_names : t -> string array
(** Configured shard names (the address strings), in ring index order. *)

val live_shards : t -> string list
(** Names of the shards currently admitted. *)

val replica_set : t -> schema:string -> db:string -> string list
(** The session's current primary (head) and read replicas. *)

val primary_of : t -> schema:string -> db:string -> string option
