#!/usr/bin/env bash
# Approx gate: certify the (ε,δ)-approximate measure engine
# (lib/approx_measure) end to end.
#
# What must hold for this script to exit 0:
#   - `bench --approx-gate` passes: 200-seed accuracy vs the exact µ^k
#     (≥ (1−δ)·200 within ε), fixed-seed bit-identity across
#     jobs = 1/2/4 (stratified pass included), an estimate on a space
#     ~10^3× past the Bigint.Overflow frontier, and conditional CIs
#     containing the exact µ^k(Q|Σ);
#   - the CLI reproduces one estimate byte-identically under
#     --jobs 1/2/4 (the library gate re-checked through bin/certainty);
#   - on the oversized space the exact path refuses with exit 2 and
#     points at --approx, while --approx answers with exit 0.
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-approx.sh
set -eu
cd "$(dirname "$0")/.."

CERTAINTY=(dune exec --no-build -- certainty)

dune build bin/certainty_cli.exe bench/main.exe

echo "== statistical gate (bench --approx-gate) =="
dune exec --no-build bench/main.exe -- --approx-gate

echo "== CLI fixed-seed bit-identity across --jobs 1/2/4 =="
TMP="${TMPDIR:-/tmp}/certainty-approx-$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
for jobs in 1 2 4; do
  "${CERTAINTY[@]}" measure \
    -s "R1(c,p); R2(c,p)" \
    -d "R1 = { ('c1', ~1) }; R2 = { (~2, 'x') }" \
    -q "Q(x,y) := R1(x,y) & !R2(x,y)" -t "('c1', ~1)" \
    --ks 4,6 --approx 0.05,0.01 --seed 42 --stratify --jobs "$jobs" \
    > "$TMP/jobs$jobs.out"
done
cmp "$TMP/jobs1.out" "$TMP/jobs2.out" || {
  echo "FATAL: --jobs 1 and --jobs 2 disagree" >&2; exit 1; }
cmp "$TMP/jobs1.out" "$TMP/jobs4.out" || {
  echo "FATAL: --jobs 1 and --jobs 4 disagree" >&2; exit 1; }
echo "  ok: identical output for jobs 1/2/4"

echo "== oversized space: exact refuses toward --approx, approx answers =="
# k = 3*10^7 over 3 nulls: 2.7*10^22 valuations, ~5.9*10^3 times past
# the 2^62 rank frontier.
OVERSIZED=(-s "U(a,b,c)" -d "U = { (~1, ~2, ~3) }"
  -q "Q() := exists x. U(x, x, x)" --ks 30000000)
if "${CERTAINTY[@]}" measure "${OVERSIZED[@]}" > "$TMP/exact.out" 2>&1; then
  echo "FATAL: exact measure should refuse the oversized space" >&2
  exit 1
fi
grep -q -- "--approx" "$TMP/exact.out" || {
  echo "FATAL: oversized-space diagnostic does not suggest --approx" >&2
  cat "$TMP/exact.out" >&2
  exit 1
}
"${CERTAINTY[@]}" measure "${OVERSIZED[@]}" --approx 0.25,0.25 --seed 7 \
  > "$TMP/approx.out"
grep -q "µ^k estimates" "$TMP/approx.out" || {
  echo "FATAL: --approx produced no estimate on the oversized space" >&2
  cat "$TMP/approx.out" >&2
  exit 1
}
echo "  ok: exit-2 diagnostic suggests --approx; --approx 0.25,0.25 answers"

echo "approx gate OK"
