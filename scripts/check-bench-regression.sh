#!/usr/bin/env bash
# Bench-regression gate: regenerate the smoke bench and diff its
# machine-normalized speedups against the committed baseline.
#
# What must hold for this script to exit 0:
#   - `bench --parallel --smoke` still certifies every engine variant
#     identical to the naive reference (it exits nonzero otherwise);
#   - every (kernel, engine, jobs, cache) row of the committed
#     bench/BENCH_baseline.json is present in the fresh run with
#     speedup_vs_baseline no more than 25% below the committed figure
#     (raw ns/op is runner-dependent; the speedup column is the same
#     machine's naive engine as denominator, so a drop is a real
#     regression, not a slower runner);
#   - the parallel rows hold too: every jobs>1 row's speedup_vs_jobs1
#     (scaling against the same engine at jobs=1) stays within the
#     same tolerance of the committed figure.
#
# Regenerate the baseline after an intentional perf change with:
#
#   dune exec bench/main.exe -- --parallel --smoke --reps 5 \
#     --out bench/BENCH_baseline.json
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-bench-regression.sh
set -eu
cd "$(dirname "$0")/.."

BASELINE="bench/BENCH_baseline.json"
FRESH="${BENCH_FRESH_OUT:-BENCH_smoke.json}"
TOLERANCE="${BENCH_MAX_REGRESSION:-0.25}"

[ -f "$BASELINE" ] || {
  echo "FATAL: no committed baseline at $BASELINE" >&2; exit 1; }

dune build bench/main.exe

echo "== fresh smoke bench (best of 5) =="
dune exec --no-build bench/main.exe -- --parallel --smoke --reps 5 \
  --out "$FRESH"

echo "== diff vs $BASELINE =="
dune exec --no-build bench/main.exe -- --diff "$BASELINE" "$FRESH" \
  --max-regression "$TOLERANCE"
