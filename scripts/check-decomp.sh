#!/usr/bin/env bash
# Decomposition gate: certify the factorized µ^k pipeline end to end.
#
# What must hold for this script to exit 0:
#   - `bench --parallel --smoke` passes with the mu_k_decomposed row
#     present and "identical": true (the bench itself FATALs if any
#     decomp variant's digest differs from the monolithic kernel
#     baseline);
#   - every decomp-engine row of that kernel reports
#     speedup_vs_baseline ≥ 5 over the monolithic exact engine;
#   - the CLI's factorized exact series is byte-identical to
#     --no-decomp on the benched two-block workload;
#   - `certainty analyze --json` on the same workload emits the
#     decomposition certificate (ANL401) and the weak-acyclicity
#     verdict; the JSON is kept as a CI artifact
#     (_build/decomp-analysis.json).
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-decomp.sh
set -eu
cd "$(dirname "$0")/.."

CERTAINTY=(dune exec --no-build -- certainty)
OUT="${DECOMP_BENCH_OUT:-BENCH_decomp_smoke.json}"
ANALYSIS_OUT="${DECOMP_ANALYSIS_OUT:-_build/decomp-analysis.json}"
MIN_SPEEDUP="${DECOMP_MIN_SPEEDUP:-5}"

dune build bin/certainty_cli.exe bench/main.exe

# The two-block workload benched as mu_k_decomposed (bench/main.ml).
SCHEMA="R1(a, b); R2(a, b); S1(a, b); S2(a, b)"
DB="R1 = { ('c1', ~1), ('c2', ~2), ('c3', ~3) }; R2 = { ('c1', ~2), ('c2', ~3) }; S1 = { ('d1', ~4), ('d2', ~5), ('d3', ~6) }; S2 = { ('d1', ~5), ('d2', ~6) }"
QUERY="Q() := R1('c1', 'c1') & !R2('c2', 'c2') & S1('d1', 'd1') & !S2('d2', 'd2')"

echo "== bench identity smoke (includes mu_k_decomposed digest gate) =="
dune exec --no-build bench/main.exe -- --parallel --smoke --out "$OUT"

echo "== mu_k_decomposed row: identical + speedup >= $MIN_SPEEDUP =="
awk -v min="$MIN_SPEEDUP" '
  /"name": "mu_k_decomposed"/ { in_row = 1 }
  in_row && /"identical": false/ {
    print "FATAL: mu_k_decomposed digests differ" > "/dev/stderr"; exit 1 }
  in_row && /"engine": "decomp"/ {
    if (match($0, /"speedup_vs_baseline": [0-9.]+/)) {
      s = substr($0, RSTART + 24, RLENGTH - 24) + 0
      rows++
      if (s < min) {
        printf "FATAL: decomp row speedup %.3f < %d\n%s\n", s, min, $0 \
          > "/dev/stderr"
        exit 1
      }
    }
  }
  in_row && /^    \}/ { in_row = 0 }
  END {
    if (rows == 0) {
      print "FATAL: no decomp-engine rows in mu_k_decomposed" > "/dev/stderr"
      exit 1
    }
    printf "  ok: %d decomp rows, all speedups >= %d\n", rows, min
  }' "$OUT"

echo "== CLI factorized series byte-identical to --no-decomp =="
TMP="${TMPDIR:-/tmp}/certainty-decomp-$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
"${CERTAINTY[@]}" measure -s "$SCHEMA" -d "$DB" -q "$QUERY" -t "()" \
  --ks 2,3,5 > "$TMP/decomp.out"
"${CERTAINTY[@]}" measure -s "$SCHEMA" -d "$DB" -q "$QUERY" -t "()" \
  --ks 2,3,5 --no-decomp > "$TMP/mono.out"
grep -q "ANL401" "$TMP/decomp.out" || {
  echo "FATAL: factorized measure did not report ANL401" >&2
  cat "$TMP/decomp.out" >&2
  exit 1
}
# Identical modulo the decomposition banner and the series header.
grep '^  k = ' "$TMP/decomp.out" > "$TMP/decomp.series"
grep '^  k = ' "$TMP/mono.out" > "$TMP/mono.series"
cmp "$TMP/decomp.series" "$TMP/mono.series" || {
  echo "FATAL: factorized series differs from --no-decomp" >&2
  diff "$TMP/decomp.series" "$TMP/mono.series" >&2 || true
  exit 1
}
echo "  ok: series lines identical with and without --no-decomp"

echo "== analyze --json emits the decomposition certificate =="
"${CERTAINTY[@]}" analyze -s "$SCHEMA" -d "$DB" -q "$QUERY" -t "()" \
  -c "ind R2[1] <= R1[1]" --json > "$ANALYSIS_OUT"
grep -q '"ANL401"' "$ANALYSIS_OUT" || {
  echo "FATAL: analyze --json has no ANL401 decomposition certificate" >&2
  cat "$ANALYSIS_OUT" >&2
  exit 1
}
grep -q '"decomp"' "$ANALYSIS_OUT" || {
  echo "FATAL: analyze --json has no decomp object" >&2; exit 1; }
grep -q '"wacyclic"' "$ANALYSIS_OUT" || {
  echo "FATAL: analyze --json has no weak-acyclicity verdict" >&2; exit 1; }
echo "  ok: certificate saved to $ANALYSIS_OUT"

echo "decomp gate OK"
