#!/usr/bin/env bash
# Parallel-scaling gate: certify that multicore fan-out stays correct
# and keeps paying.
#
# What must hold for this script to exit 0:
#   - `bench --parallel --smoke` passes (the bench itself FATALs if
#     any engine/jobs/cache variant's digest differs from the naive
#     reference, or if a µ^k brute-force row sweeps ≠ k^3 valuations);
#   - no kernel reports "identical": false in the emitted JSON
#     (belt-and-braces re-check of the bench's own gate);
#   - on a multicore runner (recommended_domain_count ≥ 2), every
#     jobs ∈ {2, 4} row reports speedup_vs_jobs1 ≥ PARALLEL_MIN_SPEEDUP
#     (default 1.0): parallel fan-out must never lose to the same
#     engine single-threaded.
#
# On a single-core runner the pool has zero workers, so jobs=2/4 run
# the identical sequential schedule and their vs_jobs1 ratios are pure
# timer noise — the speedup clause is skipped (with a notice); the
# identity clause always applies.
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-parallel.sh
set -eu
cd "$(dirname "$0")/.."

OUT="${PARALLEL_BENCH_OUT:-BENCH_parallel_smoke.json}"
MIN_SPEEDUP="${PARALLEL_MIN_SPEEDUP:-1.0}"

dune build bench/main.exe

echo "== bench identity smoke (digest gate vs naive reference) =="
dune exec --no-build bench/main.exe -- --parallel --smoke --out "$OUT"

echo "== parallel rows: identical + jobs=2/4 speedup_vs_jobs1 >= $MIN_SPEEDUP =="
awk -v min="$MIN_SPEEDUP" '
  /"recommended_domain_count":/ {
    if (match($0, /[0-9]+/)) domains = substr($0, RSTART, RLENGTH) + 0
  }
  /"name":/ { kernel = $0; sub(/^.*"name": "/, "", kernel); sub(/".*$/, "", kernel) }
  /"identical": false/ {
    printf "FATAL: %s: digests differ from the naive reference\n", kernel \
      > "/dev/stderr"
    bad = 1
  }
  /"jobs": [24],/ {
    if (match($0, /"speedup_vs_jobs1": [0-9.]+/)) {
      s = substr($0, RSTART + 20, RLENGTH - 20) + 0
      jrows++
      if (domains >= 2 && s < min) {
        printf "FATAL: %s: speedup_vs_jobs1 %.3f < %.3f\n%s\n", \
          kernel, s, min, $0 > "/dev/stderr"
        bad = 1
      }
    }
  }
  END {
    if (jrows == 0) {
      print "FATAL: no jobs=2/4 rows in the bench output" > "/dev/stderr"
      exit 1
    }
    if (bad) exit 1
    if (domains < 2)
      printf "notice: single-core runner (recommended_domain_count=%d); \
speedup clause skipped, identity clause enforced on %d parallel rows\n", \
        domains, jrows
    else
      printf "parallel gate: %d jobs=2/4 rows >= %.3fx, all digests \
identical\n", jrows, min
  }
' "$OUT"

echo "check-parallel: OK"
