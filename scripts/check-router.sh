#!/usr/bin/env bash
# Sharded serving tier gate: certify that a consistent-hash router in
# front of real `certainty serve` processes stays byte-identical to
# the single-process engine, survives losing a shard, and — on a
# multicore runner — actually scales.
#
# What must hold for this script to exit 0:
#   - `bench --router --smoke` (in-process) passes: every routed
#     response byte-identical to Service.handle with jobs = 1, the
#     replicated-update phase verdict-identical on every replica, and
#     the failover phase losing no request to a hang or a wrong
#     answer (the bench itself FATALs otherwise);
#   - external mode: 4 `certainty serve` processes behind a
#     `certainty router` serve the same workload byte-identically
#     (the "identical": false re-check below is belt and braces);
#   - kill/restore: SIGKILLing one external shard drops the router's
#     health to shards_up=3 while a client request on the routed
#     socket still gets a valid answer (correct bytes or a typed
#     shard_unavailable — never a hang); restarting the shard brings
#     shards_up back to 4;
#   - on a multicore runner (recommended_domain_count >= 2) the
#     external run's speedup_vs_1shard is >= ROUTER_MIN_SPEEDUP
#     (default 3.0) at 4 shards. Single-core runners skip the speedup
#     clause with a notice — the identity and failover clauses always
#     apply.
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-router.sh
set -eu
cd "$(dirname "$0")/.."

OUT="${ROUTER_BENCH_OUT:-BENCH_router.json}"
OUT_SMOKE="${ROUTER_BENCH_SMOKE_OUT:-BENCH_router_smoke.json}"
MIN_SPEEDUP="${ROUTER_MIN_SPEEDUP:-3.0}"
NSHARDS=4

dune build bench/main.exe bin/certainty_cli.exe

CERTAINTY="_build/default/bin/certainty_cli.exe"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/certainty-router.XXXXXX")"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -TERM "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_health() { # socket [tries]
  local tries="${2:-100}"
  for _ in $(seq "$tries"); do
    if "$CERTAINTY" client --socket "$1" health >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FATAL: no health on $1" >&2
  return 1
}

wait_shards_up() { # expected-count
  for _ in $(seq 100); do
    if "$CERTAINTY" client --socket "$DIR/router.sock" health 2>/dev/null \
        | grep -q "\"shards_up\":$1,"; then
      return 0
    fi
    sleep 0.1
  done
  echo "FATAL: router never reported shards_up=$1" >&2
  "$CERTAINTY" client --socket "$DIR/router.sock" health >&2 || true
  return 1
}

echo "== in-process router smoke (identity + replication + failover gates) =="
dune exec --no-build bench/main.exe -- --router --smoke --out "$OUT_SMOKE"

echo "== booting $NSHARDS shards + router on unix sockets =="
for i in $(seq $NSHARDS); do
  "$CERTAINTY" serve --socket "$DIR/shard$i.sock" --shard-id "shard$i" \
    2>"$DIR/shard$i.log" &
  PIDS+=($!)
done
for i in $(seq $NSHARDS); do
  wait_health "$DIR/shard$i.sock"
done

SHARD_ARGS=()
for i in $(seq $NSHARDS); do
  SHARD_ARGS+=(--shard "$DIR/shard$i.sock")
done
"$CERTAINTY" router --socket "$DIR/router.sock" "${SHARD_ARGS[@]}" \
  --replicas 2 --probe-interval 0.1 --fail-threshold 2 \
  2>"$DIR/router.log" &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_health "$DIR/router.sock"
wait_shards_up $NSHARDS

echo "== byte-identity load: router vs 1 external shard =="
dune exec --no-build bench/main.exe -- --router \
  --socket "$DIR/router.sock" --ref-socket "$DIR/shard1.sock" --out "$OUT"

echo "== kill/restore: losing shard2 must not lose requests =="
VICTIM_PID="${PIDS[1]}"
kill -KILL "$VICTIM_PID" 2>/dev/null
wait "$VICTIM_PID" 2>/dev/null || true
wait_shards_up $((NSHARDS - 1))
# The dead shard's arcs are served by replicas now: a fresh session
# must still answer, and with the exact engine bytes.
RESP="$("$CERTAINTY" client --socket "$DIR/router.sock" certain --id kr1 \
  -s "R(a); S(a)" -d "R = { ('k1'), ('k2') }; S = { (~1) }" \
  -q "Q(x) := R(x) & !S(x)")" || {
    echo "FATAL: request failed outright during the outage" >&2
    exit 1
  }
case "$RESP" in
  *'"possible":"(k1); (k2)"'*) ;;
  *'"error":"shard_unavailable"'*)
    echo "FATAL: a 2-replica session went unavailable on a 1-shard outage" >&2
    echo "$RESP" >&2
    exit 1 ;;
  *)
    echo "FATAL: wrong bytes during the outage: $RESP" >&2
    exit 1 ;;
esac
"$CERTAINTY" serve --socket "$DIR/shard2.sock" --shard-id "shard2" \
  2>>"$DIR/shard2.log" &
PIDS[1]=$!
wait_shards_up $NSHARDS
echo "  ok: ejected at $((NSHARDS - 1)) live, correct bytes under outage, re-admitted at $NSHARDS"

echo "== external run: identical + speedup_vs_1shard >= $MIN_SPEEDUP at $NSHARDS shards =="
awk -v min="$MIN_SPEEDUP" -v nshards="$NSHARDS" '
  /"recommended_domain_count":/ {
    if (match($0, /[0-9]+/)) domains = substr($0, RSTART, RLENGTH) + 0
  }
  /"identical": false/ {
    print "FATAL: a routed response differed from the single-process engine" \
      > "/dev/stderr"
    bad = 1
  }
  /"speedup_vs_1shard":/ {
    if (match($0, /[0-9.]+/)) { s = substr($0, RSTART, RLENGTH) + 0; seen = 1 }
  }
  END {
    if (!seen) {
      print "FATAL: no speedup_vs_1shard in the bench output" > "/dev/stderr"
      exit 1
    }
    if (bad) exit 1
    if (domains < 2)
      printf "notice: single-core runner (recommended_domain_count=%d); \
speedup clause skipped, identity and failover clauses enforced\n", domains
    else if (s < min) {
      printf "FATAL: speedup_vs_1shard %.2f < %.2f at %d shards\n", \
        s, min, nshards > "/dev/stderr"
      exit 1
    }
    else
      printf "router gate: %.2fx at %d shards, all responses identical\n", \
        s, nshards
  }
' "$OUT"

echo "check-router: OK"
