#!/usr/bin/env bash
# Trace gate: validate a JSONL span trace written by `--trace`.
#
# Delegates to `certainty trace-check`, which re-uses the library
# validator (every line a flat JSON event, every span closed exactly
# once, timestamps non-decreasing within a span) — the same checker the
# test-suite runs. Nonzero exit on any malformed or unclosed span. CI
# runs this over the trace of the smoke bench; run it locally with:
#
#   dune build && scripts/check-trace.sh trace.jsonl
set -u
cd "$(dirname "$0")/.."

if [ "$#" -ne 1 ]; then
  echo "usage: scripts/check-trace.sh TRACE.jsonl" >&2
  exit 2
fi
exec dune exec -- certainty trace-check "$1"
