#!/usr/bin/env bash
# Update-path gate: certify that tuple-level mutation stays correct
# and keeps paying.
#
# What must hold for this script to exit 0:
#   - `bench --update --smoke` passes (the bench itself FATALs if any
#     post-update answer — certain answers, the µ^k series, or the
#     chase-backed conditional value — differs from a session rebuilt
#     from scratch on the updated database text, or if repeated timing
#     passes disagree);
#   - the emitted JSON does not report "identical": false (belt and
#     braces re-check of the bench's own gate);
#   - the incremental row reports speedup_vs_rebuild >=
#     UPDATE_MIN_SPEEDUP (default 5): one Session.update plus a
#     re-query must beat re-parsing, re-splitting, re-indexing and
#     re-chasing the whole database by a wide margin, or the delta
#     machinery has regressed into a rebuild.
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/check-update.sh
set -eu
cd "$(dirname "$0")/.."

OUT="${UPDATE_BENCH_OUT:-BENCH_update_smoke.json}"
MIN_SPEEDUP="${UPDATE_MIN_SPEEDUP:-5}"

dune build bench/main.exe

echo "== bench identity smoke (update vs rebuild digest gate) =="
dune exec --no-build bench/main.exe -- --update --smoke --out "$OUT"

echo "== incremental row: identical + speedup_vs_rebuild >= $MIN_SPEEDUP =="
awk -v min="$MIN_SPEEDUP" '
  /"identical": false/ {
    print "FATAL: post-update answers differ from the rebuilt session" \
      > "/dev/stderr"
    bad = 1
  }
  /"speedup_vs_rebuild":/ {
    if (match($0, /"speedup_vs_rebuild": [0-9.]+/)) {
      s = substr($0, RSTART + 22, RLENGTH - 22) + 0
      rows++
      if (s < min) {
        printf "FATAL: speedup_vs_rebuild %.2f < %.2f\n%s\n", s, min, $0 \
          > "/dev/stderr"
        bad = 1
      }
    }
  }
  END {
    if (rows == 0) {
      print "FATAL: no speedup_vs_rebuild row in the bench output" \
        > "/dev/stderr"
      exit 1
    }
    if (bad) exit 1
    printf "update gate: incremental path >= %.2fx over rebuild, all \
answers identical\n", min
  }
' "$OUT"

echo "check-update: OK"
