#!/usr/bin/env bash
# Static-analysis lint gate over the example inputs.
#
# Every examples/data/<name>.query is analyzed with `certainty analyze
# --strict` against its <name>.schema (and <name>.db / <name>.deps when
# present). Any ANL error — unsafe query, non-generic query, schema
# mismatch — fails the gate. CI runs this after `dune build @check`;
# run it locally the same way:
#
#   dune build && scripts/lint-examples.sh
set -u
cd "$(dirname "$0")/.."

fail=0
for q in examples/data/*.query; do
  base="${q%.query}"
  # --flag=value form throughout: the data files open with `--`
  # comments, which a space-separated argument would turn into options.
  args=(--schema="$(cat "$base.schema")" --query="$(cat "$q")")
  [ -f "$base.db" ] && args+=(--db="$(cat "$base.db")")
  [ -f "$base.deps" ] && args+=(--constraints="$(cat "$base.deps")")
  if output=$(dune exec -- certainty analyze --strict "${args[@]}" 2>&1); then
    echo "lint ok: $base"
  else
    echo "lint FAILED: $base"
    echo "$output" | sed 's/^/  /'
    fail=1
  fi
done
exit "$fail"
