#!/usr/bin/env bash
# Serve gate: boot a real `certainty serve` daemon, drive it with the
# bench load generator, probe its failure paths, drain it with SIGTERM,
# and validate the span trace it wrote.
#
# What must hold for this script to exit 0:
#   - the server becomes healthy on a Unix socket;
#   - `bench --serve --smoke --socket` sees zero protocol errors and
#     every response byte-identical to the sequential engine
#     (it exits nonzero otherwise, and writes BENCH_serve.json);
#   - a malformed probe line gets a typed parse_error while the same
#     connection keeps working (client exits 1: one error response);
#   - SIGTERM drains the server: exit status 0, socket unlinked;
#   - the server's --trace output passes scripts/check-trace.sh.
#
# CI runs this after the build; run it locally with:
#
#   dune build && scripts/serve-smoke.sh
set -eu
cd "$(dirname "$0")/.."

SOCK="${TMPDIR:-/tmp}/certainty-serve-smoke-$$.sock"
TRACE="${SERVE_TRACE:-_build/serve-trace.jsonl}"
OUT="${SERVE_BENCH_OUT:-BENCH_serve.json}"

CERTAINTY=(dune exec --no-build -- certainty)

dune build bin/certainty_cli.exe bench/main.exe

"${CERTAINTY[@]}" serve --socket "$SOCK" --trace "$TRACE" &
SERVE_PID=$!
trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  if "${CERTAINTY[@]}" client --socket "$SOCK" health >/dev/null 2>&1; then
    healthy=1
    break
  fi
  sleep 0.1
done
[ "${healthy:-}" = 1 ] || { echo "FATAL: server never became healthy" >&2; exit 1; }

echo "== load generation (bench --serve --smoke) =="
dune exec --no-build bench/main.exe -- --serve --smoke --socket "$SOCK" --out "$OUT"

echo "== failure-path probe: malformed line, surviving connection =="
if "${CERTAINTY[@]}" client --socket "$SOCK" --raw '{oops' health --id probe; then
  echo "FATAL: client should exit 1 on the parse_error response" >&2
  exit 1
fi

echo "== graceful drain on SIGTERM =="
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FATAL: serve exited nonzero on SIGTERM" >&2; exit 1; }
trap - EXIT
[ ! -e "$SOCK" ] || { echo "FATAL: socket not unlinked after drain" >&2; exit 1; }

echo "== trace gate over the server's spans =="
bash scripts/check-trace.sh "$TRACE"

echo "serve smoke OK ($OUT, $TRACE)"
