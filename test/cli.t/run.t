The intro example of the paper: naive evaluation returns the two likely
answers even though certain answers are empty.

  $ certainty naive \
  >   --schema "R1(customer, product); R2(customer, product)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)"
  query: Q(x, y) := R1(x, y) & !R2(x, y)
  database:
  R1:
    | customer | product |
    |----------+---------|
    | c1       | _|_1    |
    | c2       | _|_1    |
    | c2       | _|_2    |
  
  R2:
    | customer | product |
    |----------+---------|
    | c1       | _|_2    |
    | c2       | _|_1    |
    | _|_3     | _|_1    |
  
  naive answers (= almost certainly true, Thm 1) (2 tuples):
    (c1, _|_1)
    (c2, _|_2)

Certain and possible answers, computed exactly.

  $ certainty certain \
  >   --schema "R(a, b)" \
  >   --db "R = { ('x', ~1) }" \
  >   --query "Q(a, b) := R(a, b)"
  query: Q(a, b) := R(a, b)
  
  certain answers (1 tuple):
    (x, _|_1)
  possible answers (4 tuples):
    (x, x)
    (x, _|_1)
    (_|_1, x)
    (_|_1, _|_1)
  naive answers (1 tuple):
    (x, _|_1)

Measuring certainty: the support polynomial and the 0-1 law verdict.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4,6
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k series (brute force):
    k =   3   µ^k = 2/3          ≈ 0.666667
    k =   4   µ^k = 3/4          ≈ 0.750000
    k =   6   µ^k = 5/6          ≈ 0.833333

Conditional measures under an inclusion dependency (1/3 from the paper,
section 4).

  $ certainty conditional \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]" \
  >   --tuple "(1, ~1)"
  query:       Q(x, y) := R(x, y)
  tuple:       (1, _|_1)
  constraint:  ind R[a] <= U[u]
  |Supp^k(Σ∧Q)| = 1
  |Supp^k(Σ)|   = 3
  µ(Q|Σ,D,t)    = 1/3 ≈ 0.333333   (Theorem 3: always exists, rational)

Parallel evaluation (--jobs) and the evaluation cache (--no-cache) never
change results: the work pool combines chunk partials in a fixed order and
all accumulation is exact, so the output is identical to the sequential run.

  $ certainty certain \
  >   --schema "R(a, b)" \
  >   --db "R = { ('x', ~1) }" \
  >   --query "Q(a, b) := R(a, b)" \
  >   --jobs 2
  query: Q(a, b) := R(a, b)
  
  certain answers (1 tuple):
    (x, _|_1)
  possible answers (4 tuples):
    (x, x)
    (x, _|_1)
    (_|_1, x)
    (_|_1, _|_1)
  naive answers (1 tuple):
    (x, _|_1)


  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4,6 --jobs 2 --no-cache
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k series (brute force):
    k =   3   µ^k = 2/3          ≈ 0.666667
    k =   4   µ^k = 3/4          ≈ 0.750000
    k =   6   µ^k = 5/6          ≈ 0.833333

  $ certainty conditional \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]" \
  >   --tuple "(1, ~1)" --jobs 2
  query:       Q(x, y) := R(x, y)
  tuple:       (1, _|_1)
  constraint:  ind R[a] <= U[u]
  |Supp^k(Σ∧Q)| = 1
  |Supp^k(Σ)|   = 3
  µ(Q|Σ,D,t)    = 1/3 ≈ 0.333333   (Theorem 3: always exists, rational)

Best answers for the section 5 example.

  $ certainty best \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)"
  query: Q(x, y) := R(x, y) & !S(x, y)
  
  best answers  Best(Q,D) (1 tuple):
    (2, _|_2)
  best ∩ almost-certain  Best_µ(Q,D) (1 tuple):
    (2, _|_2)
  ranking by support (strata of the ⊴ preorder):
    rank 0: (2, _|_2)
    rank 1: (1, _|_1) (2, 1) (2, _|_1) (2, _|_3) (_|_1, 1) (_|_1, _|_1) (_|_1, _|_2) (_|_2, 2) (_|_2, _|_1)
    rank 2: (1, 1) (1, 2) (1, _|_3) (2, 2) (_|_1, _|_3) (_|_2, _|_2) (_|_2, _|_3) (_|_3, _|_2)
    rank 3: (_|_1, 2) (_|_3, 1) (_|_3, 2) (_|_3, _|_3)
    rank 4: (1, _|_2) (_|_2, 1) (_|_3, _|_1)
  (not a UCQ: Theorem 8 algorithm not applicable)

The chase with functional dependencies.

  $ certainty chase \
  >   --schema "R(k, v)" \
  >   --db "R = { ('a', ~1), ('a', 'seen'), ('b', ~2) }" \
  >   --constraints "fd R : k -> v"
  chasing with 1 functional dependency
    step: fd R : k -> v forces _|_1 := seen
  chase succeeded:
  R:
    | k | v    |
    |---+------|
    | a | seen |
    | b | _|_2 |
  

Satisfiability of unary keys and foreign keys (Proposition 6).

  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { ('alice') }" \
  >   --constraints "key Orders : id; key Customers : cid; fk Orders[cust] -> Customers[cid]"
  SATISFIABLE (Prop 6 polynomial procedure)
  witness: {~1 -> alice}

  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { }" \
  >   --constraints "key Customers : cid; fk Orders[cust] -> Customers[cid]"
  UNSATISFIABLE: null ~1 has no admissible foreign-key target

Grading an approximation scheme.

  $ certainty approx \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)" \
  >   --scheme naive
  query:  Q(x, y) := R(x, y) & !S(x, y)
  scheme: naive
  
  certain answers (0 tuples):
    (empty)
  returned by the scheme (2 tuples):
    (1, _|_1)
    (2, _|_2)
  missed certain answers (0 tuples):
    (empty)
  spurious but almost certainly true (benign) (2 tuples):
    (1, _|_1)
    (2, _|_2)
  spurious and almost certainly false (harmful) (0 tuples):
    (empty)
  recall = 1   precision = 0   sound = false   complete = true

Errors are reported with a non-zero exit code.

  $ certainty naive --schema "R(a" --db "R = { }" --query "R(x)"
  error: expected ) but found <eof>
  [2]

  $ certainty naive --schema "R(a)" --db "R = { }" --query "S(x)"
  error: ill-formed query: unknown relation S
  [2]

Recursive datalog over an incomplete graph (the 0-1 law beyond FO).

  $ certainty datalog \
  >   --schema "E(src, dst)" \
  >   --db "E = { ('a', ~1), (~1, 'c') }" \
  >   --program "TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, z)." \
  >   --goal TC
  program:
  TC(x, y) := E(x, y).
  TC(x, z) := E(x, y), TC(y, z).
  almost certainly true TC facts (naive fixpoint, Thm 1) (3 tuples):
    (a, c)
    (a, _|_1)
    (_|_1, c)
  of these, certain under every valuation: 3
    (a, c)
    (a, _|_1)
    (_|_1, c)
