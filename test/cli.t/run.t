The intro example of the paper: naive evaluation returns the two likely
answers even though certain answers are empty.

  $ certainty naive \
  >   --schema "R1(customer, product); R2(customer, product)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)"
  query: Q(x, y) := R1(x, y) & !R2(x, y)
  database:
  R1:
    | customer | product |
    |----------+---------|
    | c1       | _|_1    |
    | c2       | _|_1    |
    | c2       | _|_2    |
  
  R2:
    | customer | product |
    |----------+---------|
    | c1       | _|_2    |
    | c2       | _|_1    |
    | _|_3     | _|_1    |
  
  naive answers (= almost certainly true, Thm 1) (2 tuples):
    (c1, _|_1)
    (c2, _|_2)

Certain and possible answers, computed exactly.

  $ certainty certain \
  >   --schema "R(a, b)" \
  >   --db "R = { ('x', ~1) }" \
  >   --query "Q(a, b) := R(a, b)"
  query: Q(a, b) := R(a, b)
  
  certain answers (1 tuple):
    (x, _|_1)
  possible answers (4 tuples):
    (x, x)
    (x, _|_1)
    (_|_1, x)
    (_|_1, _|_1)
  naive answers (1 tuple):
    (x, _|_1)

Measuring certainty: the support polynomial and the 0-1 law verdict.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4,6
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k series (brute force):
    k =   3   µ^k = 2/3          ≈ 0.666667
    k =   4   µ^k = 3/4          ≈ 0.750000
    k =   6   µ^k = 5/6          ≈ 0.833333

Conditional measures under an inclusion dependency (1/3 from the paper,
section 4).

  $ certainty conditional \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]" \
  >   --tuple "(1, ~1)"
  query:       Q(x, y) := R(x, y)
  tuple:       (1, _|_1)
  constraint:  ind R[a] <= U[u]
  |Supp^k(Σ∧Q)| = 1
  |Supp^k(Σ)|   = 3
  µ(Q|Σ,D,t)    = 1/3 ≈ 0.333333   (Theorem 3: always exists, rational)

Parallel evaluation (--jobs) and the evaluation cache (--no-cache) never
change results: the work pool combines chunk partials in a fixed order and
all accumulation is exact, so the output is identical to the sequential run.

  $ certainty certain \
  >   --schema "R(a, b)" \
  >   --db "R = { ('x', ~1) }" \
  >   --query "Q(a, b) := R(a, b)" \
  >   --jobs 2
  query: Q(a, b) := R(a, b)
  
  certain answers (1 tuple):
    (x, _|_1)
  possible answers (4 tuples):
    (x, x)
    (x, _|_1)
    (_|_1, x)
    (_|_1, _|_1)
  naive answers (1 tuple):
    (x, _|_1)


  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4,6 --jobs 2 --no-cache
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k series (brute force):
    k =   3   µ^k = 2/3          ≈ 0.666667
    k =   4   µ^k = 3/4          ≈ 0.750000
    k =   6   µ^k = 5/6          ≈ 0.833333

  $ certainty conditional \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]" \
  >   --tuple "(1, ~1)" --jobs 2
  query:       Q(x, y) := R(x, y)
  tuple:       (1, _|_1)
  constraint:  ind R[a] <= U[u]
  |Supp^k(Σ∧Q)| = 1
  |Supp^k(Σ)|   = 3
  µ(Q|Σ,D,t)    = 1/3 ≈ 0.333333   (Theorem 3: always exists, rational)

Best answers for the section 5 example.

  $ certainty best \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)"
  query: Q(x, y) := R(x, y) & !S(x, y)
  
  best answers  Best(Q,D) (1 tuple):
    (2, _|_2)
  best ∩ almost-certain  Best_µ(Q,D) (1 tuple):
    (2, _|_2)
  ranking by support (strata of the ⊴ preorder):
    rank 0: (2, _|_2)
    rank 1: (1, _|_1) (2, 1) (2, _|_1) (2, _|_3) (_|_1, 1) (_|_1, _|_1) (_|_1, _|_2) (_|_2, 2) (_|_2, _|_1)
    rank 2: (1, 1) (1, 2) (1, _|_3) (2, 2) (_|_1, _|_3) (_|_2, _|_2) (_|_2, _|_3) (_|_3, _|_2)
    rank 3: (_|_1, 2) (_|_3, 1) (_|_3, 2) (_|_3, _|_3)
    rank 4: (1, _|_2) (_|_2, 1) (_|_3, _|_1)
  (not a UCQ: Theorem 8 algorithm not applicable)

The chase with functional dependencies.

  $ certainty chase \
  >   --schema "R(k, v)" \
  >   --db "R = { ('a', ~1), ('a', 'seen'), ('b', ~2) }" \
  >   --constraints "fd R : k -> v"
  chasing with 1 functional dependency
    step: fd R : k -> v forces _|_1 := seen
  chase succeeded:
  R:
    | k | v    |
    |---+------|
    | a | seen |
    | b | _|_2 |
  

Satisfiability of unary keys and foreign keys (Proposition 6).

  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { ('alice') }" \
  >   --constraints "key Orders : id; key Customers : cid; fk Orders[cust] -> Customers[cid]"
  SATISFIABLE (Prop 6 polynomial procedure)
  witness: {~1 -> alice}

  $ certainty sat \
  >   --schema "Orders(id, cust); Customers(cid)" \
  >   --db "Orders = { ('o1', ~1) }; Customers = { }" \
  >   --constraints "key Customers : cid; fk Orders[cust] -> Customers[cid]"
  UNSATISFIABLE: null ~1 has no admissible foreign-key target

Grading an approximation scheme.

  $ certainty approx \
  >   --schema "R(a, b); S(a, b)" \
  >   --db "R = { (1, ~1), (2, ~2) }; S = { (1, ~2), (~3, ~1) }" \
  >   --query "Q(x, y) := R(x, y) & !S(x, y)" \
  >   --scheme naive
  query:  Q(x, y) := R(x, y) & !S(x, y)
  scheme: naive
  
  certain answers (0 tuples):
    (empty)
  returned by the scheme (2 tuples):
    (1, _|_1)
    (2, _|_2)
  missed certain answers (0 tuples):
    (empty)
  spurious but almost certainly true (benign) (2 tuples):
    (1, _|_1)
    (2, _|_2)
  spurious and almost certainly false (harmful) (0 tuples):
    (empty)
  recall = 1   precision = 0   sound = false   complete = true

Errors are reported with a non-zero exit code.

  $ certainty naive --schema "R(a" --db "R = { }" --query "R(x)"
  error: expected ) but found <eof>
  [2]

  $ certainty naive --schema "R(a)" --db "R = { }" --query "S(x)"
  error: ill-formed query: unknown relation S
  [2]

Recursive datalog over an incomplete graph (the 0-1 law beyond FO).

  $ certainty datalog \
  >   --schema "E(src, dst)" \
  >   --db "E = { ('a', ~1), (~1, 'c') }" \
  >   --program "TC(x, y) := E(x, y). TC(x, z) := E(x, y), TC(y, z)." \
  >   --goal TC
  program:
  TC(x, y) := E(x, y).
  TC(x, z) := E(x, y), TC(y, z).
  almost certainly true TC facts (naive fixpoint, Thm 1) (3 tuples):
    (a, c)
    (a, _|_1)
    (_|_1, c)
  of these, certain under every valuation: 3
    (a, c)
    (a, _|_1)
    (_|_1, c)

Static analysis of the §4 running example: tightest fragment, safety
and genericity verdicts, constraint class, and the k^m cost bound.

  $ certainty analyze \
  >   --schema "R(a, b); U(u)" \
  >   --db "R = { (2, 1), (~1, ~1) }; U = { (1), (2), (3) }" \
  >   --query "Q(x, y) := R(x, y)" \
  >   --constraints "ind R[1] <= U[1]"
  query:       Q(x, y) := R(x, y)
  fragment:    CQ   (CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO)
  safe:        yes
  generic:     yes
  constraints: 1 dependency; FD-only: no; unary keys+FKs: no
  cost:        |V^k| = k^1; at k = 19: 19 valuations
  chase:       weakly acyclic (1 regular, 0 special edges)
  verdict:     ok (0 errors, 0 warnings)
  diagnostics: none
  dispatch:
    hint[ANL301] dispatch: CQ ⊆ Pos∀G: naive evaluation computes certain answers (Corollary 3) — no valuation enumeration needed
    hint[ANL302] dispatch: CQ ⊆ UCQ: support comparisons and best answers run in polynomial time (Theorem 8)
    hint[ANL305] dispatch: constraint set is neither FD-only nor unary keys+FKs: only the generic (exponential) procedures apply
    hint[ANL306] dispatch: dependency set is weakly acyclic (1 regular, 0 special edges, no special cycle): the chase terminates on every instance — static certificate, no step budget

The same report as JSON, here for a non-generic query (error ANL002).
Without --strict the exit code stays zero.

  $ certainty analyze --schema "R(a, b)" --query "Q(x) := R(x, 'c')" --json
  {"query": "Q(x) := R(x, 'c')", "fragment": "CQ", "safe": true, "generic": false, "errors": 1, "warnings": 0, "hints": 2, "diagnostics": [{"code": "ANL002", "severity": "error", "loc": "query", "message": "not generic: mentions constant 'c'", "hint": "Theorem 1's 0-1 law needs generic queries; with constants the measures are relative to the genericity set C (anchored valuation classes)"}, {"code": "ANL301", "severity": "hint", "loc": "dispatch", "message": "CQ ⊆ Pos∀G: naive evaluation computes certain answers (Corollary 3) — no valuation enumeration needed"}, {"code": "ANL302", "severity": "hint", "loc": "dispatch", "message": "CQ ⊆ UCQ: support comparisons and best answers run in polynomial time (Theorem 8)"}]}

Under --strict, errors make the exit code non-zero: ANL002 for a
non-generic query, ANL001 for an unsafe one — distinct stable codes.

  $ certainty analyze --schema "R(a, b)" --query "Q(x) := R(x, 'c')" --strict
  query:       Q(x) := R(x, 'c')
  fragment:    CQ   (CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO)
  safe:        yes
  generic:     no
  verdict:     issues found (1 error, 0 warnings)
  diagnostics:
    error[ANL002] query: not generic: mentions constant 'c'
      = Theorem 1's 0-1 law needs generic queries; with constants the measures are relative to the genericity set C (anchored valuation classes)
  dispatch:
    hint[ANL301] dispatch: CQ ⊆ Pos∀G: naive evaluation computes certain answers (Corollary 3) — no valuation enumeration needed
    hint[ANL302] dispatch: CQ ⊆ UCQ: support comparisons and best answers run in polynomial time (Theorem 8)
  [1]

  $ certainty analyze --schema "R(a, b)" --query "Q(x) := !R(x, x)" --strict
  query:       Q(x) := !R(x, x)
  fragment:    FO   (CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO)
  safe:        no
  generic:     yes
  verdict:     issues found (1 error, 0 warnings)
  diagnostics:
    error[ANL001] query: unsafe query: answer variable x not range-restricted
      = bind every answer variable by a relational atom (or equate it with one that is); unsafe answers are domain-dependent
  [1]

The evaluation commands run the same precheck: findings appear as
warnings on stderr and the computation proceeds…

  $ certainty certain --schema "R(a, b)" --db "R = { ('a', ~1) }" \
  >   --query "Q(x) := R(x, 'b')" 2>precheck.stderr
  query: Q(x) := R(x, 'b')
  
  certain answers (0 tuples):
    (empty)
  possible answers (1 tuple):
    (a)
  naive answers (0 tuples):
    (empty)
  $ cat precheck.stderr
  analysis warning[ANL002] query: not generic: mentions constant 'b'

…while --strict aborts before evaluating.

  $ certainty certain --schema "R(a, b)" --db "R = { ('a', ~1) }" \
  >   --query "Q(x) := R(x, 'b')" --strict
  analysis error[ANL002] query: not generic: mentions constant 'b'
  error: static analysis failed (--strict); run 'certainty analyze' for the full report
  [1]

Observability: --metrics prints the engine counters after the run. With
--jobs 1 the sweep is sequential (no pool tasks), so every counter is
deterministic: 27 + 64 digit-sweep verdicts for the k=3,4 series plus
the class sweeps of the support polynomial. Exhaustive sweeps bypass
the verdict cache (every key is distinct by construction), so the only
cache traffic left is the kernel-db memo: one miss building it, one
hit reusing it.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4 --jobs 1 --metrics
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k series (brute force):
    k =   3   µ^k = 2/3          ≈ 0.666667
    k =   4   µ^k = 3/4          ≈ 0.750000
  == metrics ==
    valuations_evaluated     165
    kernel_refreshes         165
    short_circuits           0
    cache_hits               1
    cache_misses             1
    cache_evictions          0
    pool_tasks_queued        0
    pool_tasks_stolen        0
    pool_tasks_completed     0
    chase_steps              0
    approx_samples           0
    approx_strata            0
    serve_connections        0
    serve_requests           0
    serve_parse_errors       0
    serve_overloaded         0
    serve_deadline_exceeded  0
    serve_session_loads      0
    serve_session_evictions  0
    serve_updates            0
    decomp_plans             2
    decomp_components        2
    decomp_indecomposable    0
    router_requests          0
    router_forwards          0
    router_retries           0
    router_replica_forwards  0
    router_shard_unavailable 0
    router_ring_remaps       0
    router_probe_failures    0

--trace writes the span events as JSON lines; trace-check validates the
file (flat JSON per line, every span closed, monotone timestamps). The
sequential run emits exactly four spans: two support-polynomial class
sweeps and one µ^k count per k.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3,4 --jobs 1 --trace run.jsonl > /dev/null
  $ certainty trace-check run.jsonl
  trace ok: 6 completed span(s)
  $ sed -n '1p' run.jsonl | sed 's/"t":[0-9]*/"t":T/'
  {"ev":"b","id":1,"name":"analysis.decomp","t":T,"dom":0}

A truncated or interleaved trace fails the gate.

  $ head -c 40 run.jsonl > broken.jsonl
  $ certainty trace-check broken.jsonl
  error: malformed trace: line 1: truncated line
  [1]

A µ^k space that does not fit in a machine integer is refused up front
with the exact size, instead of hanging in the brute-force sweep.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3000000
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  error: k = 3000000 over 3 nulls gives a valuation space of 27000000000000000000 valuations — too large to enumerate; pick smaller --ks, or estimate it with --approx EPS,DELTA (e.g. --approx 0.05,0.01)
  [2]

As the diagnostic suggests, --approx answers on that same space with a
seeded Monte-Carlo (ε,δ)-estimate — 17 samples suffice at ε = δ = 1/4,
and a fixed seed makes the estimate reproducible bit for bit (for any
--jobs; scripts/check-approx.sh holds the gate on that).

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 3000000 --approx 0.25,0.25 --seed 7
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k estimates (Monte-Carlo, ε = 1/4, δ = 1/4, 17 samples/k, seed 7):
    k = 3000000   µ^k ≈ 1            (1.000000)   CI [3/4, 1]

On an enumerable space the estimates bracket the exact series — here
µ^4 = 3/4 and µ^6 = 5/6, both inside their intervals. --stratify adds
a second pass partitioned by null support, and the new work is visible
in the approx_samples / approx_strata counters.

  $ certainty measure \
  >   --schema "R1(c, p); R2(c, p)" \
  >   --db "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }" \
  >   --query "Q(x,y) := R1(x,y) & !R2(x,y)" \
  >   --tuple "('c2', ~2)" --ks 4,6 --approx 0.1,0.05 --seed 42 --stratify --metrics
  query:  Q(x, y) := R1(x, y) & !R2(x, y)
  tuple:  (c2, _|_2)
  |Supp^k| = k^3 - k^2   (|V^k| = k^3)
  µ(Q,D,t) = 1   [0-1 law: almost certainly true]
  µ^k estimates (Monte-Carlo, ε = 1/10, δ = 1/20, 185 samples/k, seed 42):
    k =   4   µ^k ≈ 147/185      (0.794595)   CI [257/370, 331/370]
              stratified (4 null-support strata, 189 samples) ≈ 70873/95424  (0.742717)   CI [306653/477120, 402077/477120]
    k =   6   µ^k ≈ 157/185      (0.848649)   CI [277/370, 351/370]
              stratified (4 null-support strata, 189 samples) ≈ 15233/17928  (0.849676)   CI [67201/89640, 85129/89640]
  == metrics ==
    valuations_evaluated     822
    kernel_refreshes         263
    short_circuits           0
    cache_hits               560
    cache_misses             190
    cache_evictions          0
    pool_tasks_queued        0
    pool_tasks_stolen        0
    pool_tasks_completed     0
    chase_steps              0
    approx_samples           748
    approx_strata            8
    serve_connections        0
    serve_requests           0
    serve_parse_errors       0
    serve_overloaded         0
    serve_deadline_exceeded  0
    serve_session_loads      0
    serve_session_evictions  0
    serve_updates            0
    decomp_plans             2
    decomp_components        2
    decomp_indecomposable    0
    router_requests          0
    router_forwards          0
    router_retries           0
    router_replica_forwards  0
    router_shard_unavailable 0
    router_ring_remaps       0
    router_probe_failures    0

Malformed or out-of-range (ε,δ) are refused up front.

  $ certainty measure -s "R1(c,p)" -d "R1 = { (~1, 'x') }" \
  >   -q "Q() := exists x. R1(x, x)" --approx nope
  error: --approx expects EPS,DELTA (e.g. --approx 0.05,0.01)
  [2]
  $ certainty measure -s "R1(c,p)" -d "R1 = { (~1, 'x') }" \
  >   -q "Q() := exists x. R1(x, x)" --approx 2,0.5
  error: --approx expects EPS and DELTA strictly between 0 and 1
  [2]

The chase reports its substitution count through the same counters.

  $ certainty chase \
  >   --schema "R(a, b)" \
  >   --db "R = { ('k', ~1), ('k', ~2) }" \
  >   --constraints "fd R : a -> b" --metrics
  chasing with 1 functional dependency
    step: fd R : a -> b forces _|_1 := _|_2
  chase succeeded:
  R:
    | a | b    |
    |---+------|
    | k | _|_2 |
  
  == metrics ==
    valuations_evaluated     0
    kernel_refreshes         0
    short_circuits           0
    cache_hits               0
    cache_misses             0
    cache_evictions          0
    pool_tasks_queued        0
    pool_tasks_stolen        0
    pool_tasks_completed     0
    chase_steps              1
    approx_samples           0
    approx_strata            0
    serve_connections        0
    serve_requests           0
    serve_parse_errors       0
    serve_overloaded         0
    serve_deadline_exceeded  0
    serve_session_loads      0
    serve_session_evictions  0
    serve_updates            0
    decomp_plans             0
    decomp_components        0
    decomp_indecomposable    0
    router_requests          0
    router_forwards          0
    router_retries           0
    router_replica_forwards  0
    router_shard_unavailable 0
    router_ring_remaps       0
    router_probe_failures    0
