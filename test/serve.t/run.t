The query service's failure paths, end to end through the real binary:
a malformed line gets a typed parse_error and the connection survives,
a zero-length admission queue sheds load with 'overloaded', a 1ms
deadline on a huge valuation space trips 'deadline_exceeded', and
SIGTERM drains gracefully with exit status 0.

  $ wait_for_health () {
  >   for _ in $(seq 100); do
  >     if certainty client --socket "$1" health >/dev/null 2>&1; then return 0; fi
  >     sleep 0.1
  >   done
  >   echo "server never became healthy"; return 1
  > }

A default server. The health snapshot of an idle server is
deterministic.

  $ certainty serve --socket ./main.sock 2>/dev/null &
  $ SERVE_PID=$!
  $ wait_for_health ./main.sock
  $ certainty client --socket ./main.sock health --id h1 | sed 's/"generation":[0-9]*/"generation":GEN/'
  {"id":"h1","ok":true,"op":"health","status":"serving","sessions":0,"queue":0,"inflight":0,"workers":4,"max_queue":64,"shard_id":"./main.sock","generation":GEN}

A malformed request line is answered with a typed parse_error — and the
connection survives it: the health request sent afterwards on the very
same connection is answered normally. The client exits 1 because one
response was an error.

  $ certainty client --socket ./main.sock --raw '{oops' health --id h2 > h2.out; echo "exit $?"
  exit 1
  $ sed 's/"generation":[0-9]*/"generation":GEN/' h2.out
  {"ok":false,"error":"parse_error","message":"expected '\"' at byte 1, found 'o'"}
  {"id":"h2","ok":true,"op":"health","status":"serving","sessions":0,"queue":0,"inflight":0,"workers":4,"max_queue":64,"shard_id":"./main.sock","generation":GEN}

A real query, for comparison with the sequential CLI engine.

  $ certainty client --socket ./main.sock certain --id q1 \
  >   -s "R(a); S(a)" -d "R = { ('c1'), ('c2') }; S = { (~1) }" \
  >   -q "Q(x) := R(x) & !S(x)"
  {"id":"q1","ok":true,"op":"certain","certain":"","certain_count":0,"possible":"(c1); (c2)","possible_count":2,"naive":"(c1); (c2)","naive_count":2}

The approx op: a seeded Monte-Carlo (ε,δ)-estimate of µ^k over the
wire, deterministic for a fixed seed. --stratify adds the null-support
second pass's figures to the response.

  $ certainty client --socket ./main.sock approx --id a1 \
  >   -s "R1(c,p); R2(c,p)" -d "R1 = { ('c1', ~1) }; R2 = { (~2, 'x') }" \
  >   -q "Q(x,y) := R1(x,y) & !R2(x,y)" -t "('c1', ~1)" -k 6 \
  >   --approx 0.1,0.05 --seed 42 --stratify
  {"id":"a1","ok":true,"op":"approx","estimate":"178/185","ci_lo":"319/370","ci_hi":"1","samples":185,"seed":42,"hits":178,"stratified":"97/99","stratified_ci_lo":"871/990","stratified_ci_hi":"1","stratified_samples":188,"strata":3}

It also answers on a valuation space the exact measure op must refuse:
k = 3*10^7 over 3 nulls is 2.7*10^22 valuations, past the machine-int
rank frontier, and 17 samples give the (1/4, 1/4) guarantee.

  $ certainty client --socket ./main.sock approx --id a2 \
  >   -s "U(a,b,c)" -d "U = { (~1, ~2, ~3) }" \
  >   -q "Q() := exists x. U(x, x, x)" -k 30000000 --approx 0.25,0.25 --seed 7
  {"id":"a2","ok":true,"op":"approx","estimate":"0","ci_lo":"0","ci_hi":"1/4","samples":17,"seed":7,"hits":0}

SIGTERM drains: the process exits 0 and unlinks its socket.

  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID
  $ test ! -e ./main.sock

With --max-queue 0 every evaluating request is shed with a typed
'overloaded' (health is answered inline, off-queue, so the probe loop
still works).

  $ certainty serve --socket ./q0.sock --max-queue 0 2>/dev/null &
  $ Q0_PID=$!
  $ wait_for_health ./q0.sock
  $ certainty client --socket ./q0.sock certain --id o1 \
  >   -s "R(a); S(a)" -d "R = { ('c1'), ('c2') }; S = { (~1) }" \
  >   -q "Q(x) := R(x) & !S(x)"
  {"id":"o1","ok":false,"error":"overloaded","message":"admission queue full"}
  [1]
  $ kill -TERM $Q0_PID
  $ wait $Q0_PID

A 1ms server-default deadline against 60^4 = 12,960,000 valuations:
the guard trips at a chunk boundary and the partial sweep is discarded
with a typed 'deadline_exceeded'. The same server still completes a
request that raises its own deadline.

  $ certainty serve --socket ./dl.sock --deadline-ms 1 2>/dev/null &
  $ DL_PID=$!
  $ wait_for_health ./dl.sock
  $ certainty client --socket ./dl.sock measure --id d1 \
  >   -s "U(a,b,c,d)" -d "U = { (~1, ~2, ~3, ~4) }" \
  >   -q "Q() := exists x. U(x, x, x, x)" -k 60
  {"id":"d1","ok":false,"error":"deadline_exceeded","message":"deadline exceeded"}
  [1]
  $ certainty client --socket ./dl.sock measure --id d2 --deadline-ms 60000 \
  >   -s "U(a,b,c,d)" -d "U = { (~1, ~2, ~3, ~4) }" \
  >   -q "Q() := exists x. U(x, x, x, x)" -k 5
  {"id":"d2","ok":true,"op":"measure","supp_poly":"k","nulls":4,"mu":"0","verdict":"almost certainly false","series":"5=1/125"}

The deadline also cancels sampling: (ε,δ) = (0.001, 0.001) asks for
~3.8 million samples, and the guard trips at a chunk boundary mid-run.

  $ certainty client --socket ./dl.sock approx --id d3 \
  >   -s "R1(c,p); R2(c,p)" -d "R1 = { ('c1', ~1) }; R2 = { (~2, 'x') }" \
  >   -q "Q(x,y) := R1(x,y) & !R2(x,y)" -t "('c1', ~1)" -k 6 \
  >   --approx 0.001,0.001 --seed 1
  {"id":"d3","ok":false,"error":"deadline_exceeded","message":"deadline exceeded"}
  [1]

But a request cannot opt out of the operator's budget cap: a
non-positive deadline_ms is refused up front with bad_request.

  $ certainty client --socket ./dl.sock --raw '{"op":"measure","deadline_ms":0}'
  {"ok":false,"error":"bad_request","message":"deadline_ms must be positive"}
  [1]
  $ kill -TERM $DL_PID
  $ wait $DL_PID

Connection failures are clean diagnostics, not crashes: an
unresolvable host and a missing socket both exit 2 with a message.

  $ certainty client --port 1 --host definitely.not.a.host.invalid health
  error: cannot resolve host definitely.not.a.host.invalid
  [2]
  $ certainty client --socket ./no-such.sock health
  error: cannot connect: No such file or directory (connect)
  [2]
