(* Tests for the static-analysis subsystem (lib/analysis): the
   diagnostics engine, the safety/genericity/schema checks (one
   positive and one clean case per code), the fragment classifier and
   its dispatch hints, the valuation-space cost analysis, and the
   classifier-driven fast paths of [Incomplete.Certain] and
   [Zeroone.Conditional]. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Parser = Logic.Parser
module Fragment = Logic.Fragment
module Dependency = Constraints.Dependency
module Certain = Incomplete.Certain
module Conditional = Zeroone.Conditional
module Diag = Analysis.Diag
module Safety = Analysis.Safety
module Classify = Analysis.Classify
module Cost = Analysis.Cost
module Report = Analysis.Report
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let rat_t = Alcotest.testable R.pp R.equal

let rs_schema = Schema.make [ ("R", 2); ("S", 1) ]

let codes ds = List.sort_uniq String.compare (List.map (fun d -> d.Diag.code) ds)
let has_code c ds = List.exists (fun d -> d.Diag.code = c) ds
let q s = Parser.query_exn s

(* ------------------------------------------------------------------ *)
(* Diagnostics engine                                                   *)
(* ------------------------------------------------------------------ *)

let test_diag_basics () =
  let e = Diag.error ~code:"ANL001" ~loc:"query" "boom" in
  let w = Diag.warning ~code:"ANL101" ~hint:"drop it" ~loc:"query" "meh" in
  let h = Diag.hint ~code:"ANL301" ~loc:"dispatch" "fast" in
  check string_t "severity strings" "error,warning,hint"
    (String.concat ","
       (List.map (fun d -> Diag.severity_string d.Diag.severity) [ e; w; h ]));
  (* Sort puts errors before warnings before hints regardless of input
     order. *)
  let sorted = Diag.sort [ h; w; e ] in
  check string_t "sorted codes" "ANL001,ANL101,ANL301"
    (String.concat "," (List.map (fun d -> d.Diag.code) sorted));
  check bool_t "has_errors" true (Diag.has_errors [ h; e ]);
  check bool_t "no errors" false (Diag.has_errors [ h; w ]);
  check int_t "count warnings" 1 (Diag.count Diag.Warning [ e; w; h ]);
  (* to_string: one line, hint on an indented continuation. *)
  check string_t "render" "error[ANL001] query: boom" (Diag.to_string e);
  check string_t "render with hint" "warning[ANL101] query: meh\n  = drop it"
    (Diag.to_string w)

let test_diag_registry () =
  (* Every code the checks can emit is registered exactly once, with
     the severity the constructors use. *)
  let expected =
    [ "ANL001"; "ANL002"; "ANL003"; "ANL101"; "ANL102"; "ANL103"; "ANL201";
      "ANL202"; "ANL301"; "ANL302"; "ANL303"; "ANL304"; "ANL305"; "ANL306";
      "ANL307"; "ANL401"; "ANL402"; "ANL403" ]
  in
  check int_t "registry size" (List.length expected) (List.length Diag.registry);
  List.iter
    (fun c ->
      check bool_t (c ^ " registered") true
        (List.exists (fun (c', _, _) -> c' = c) Diag.registry))
    expected;
  let sev c =
    let _, s, _ = List.find (fun (c', _, _) -> c' = c) Diag.registry in
    s
  in
  check bool_t "ANL001 is error" true (sev "ANL001" = Diag.Error);
  check bool_t "ANL201 is warning" true (sev "ANL201" = Diag.Warning);
  check bool_t "ANL305 is hint" true (sev "ANL305" = Diag.Hint);
  check bool_t "ANL306 is hint" true (sev "ANL306" = Diag.Hint);
  check bool_t "ANL307 is warning" true (sev "ANL307" = Diag.Warning);
  check bool_t "ANL401 is hint" true (sev "ANL401" = Diag.Hint);
  check bool_t "ANL403 is warning" true (sev "ANL403" = Diag.Warning)

let test_diag_json () =
  let d =
    Diag.error ~code:"ANL003" ~loc:"query"
      "relation \"T\" unknown\nsecond line"
  in
  let j = Diag.to_json d in
  check bool_t "escapes quotes" true
    (String.length j > 0
    && String.index_opt j '\n' = None
    (* the newline must be escaped, not literal *));
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "code field" true (contains "\"code\": \"ANL003\"" j);
  check bool_t "escaped quote" true (contains "\\\"T\\\"" j);
  check bool_t "escaped newline" true (contains "\\n" j);
  check string_t "empty list renders as []" "[]" (Diag.render_json [])

(* ------------------------------------------------------------------ *)
(* Safety / range restriction                                           *)
(* ------------------------------------------------------------------ *)

let test_safety () =
  check bool_t "atom-bound safe" true (Safety.is_safe (q "Q(x, y) := R(x, y)"));
  check bool_t "negation unsafe" false (Safety.is_safe (q "Q(x) := !R(x, x)"));
  (* Equality with a restricted variable propagates restriction. *)
  check bool_t "equality chain safe" true
    (Safety.is_safe (q "Q(x, y) := R(x, x) & y = x"));
  (* Disjunction restricts only the intersection. *)
  check bool_t "one-branch disjunction unsafe" false
    (Safety.is_safe (q "Q(x, y) := R(x, y) | S(x)"));
  check bool_t "both-branch disjunction safe" true
    (Safety.is_safe (q "Q(x) := S(x) | R(x, x)"));
  (* Universal quantification restricts nothing. *)
  check bool_t "forall unsafe" false
    (Safety.is_safe (Query.make [ "x" ] (F.Forall ("y", F.Atom ("R", [ F.var "x"; F.var "y" ])))));
  check string_t "witnesses" "y"
    (String.concat "," (Safety.unsafe_answer_vars (q "Q(x, y) := R(x, x)")))

(* One positive and one clean case per check code. *)
let test_check_codes () =
  let run s = Safety.check_query rs_schema (q s) in
  (* ANL001 unsafe *)
  check bool_t "ANL001 fires" true (has_code "ANL001" (run "Q(x) := !R(x, x)"));
  check bool_t "ANL001 clean" false (has_code "ANL001" (run "Q(x, y) := R(x, y)"));
  (* ANL002 non-generic *)
  check bool_t "ANL002 fires" true (has_code "ANL002" (run "Q(x) := R(x, 'a')"));
  check bool_t "ANL002 clean" false (has_code "ANL002" (run "Q(x, y) := R(x, y)"));
  (* ANL003 schema conformance: unknown relation and arity mismatch *)
  check bool_t "ANL003 unknown relation" true
    (has_code "ANL003" (run "Q(x) := T(x)"));
  check bool_t "ANL003 arity mismatch" true
    (has_code "ANL003" (run "Q(x) := R(x)"));
  check bool_t "ANL003 clean" false (has_code "ANL003" (run "Q(x) := S(x)"));
  (* ANL101 unused quantified variable *)
  check bool_t "ANL101 fires" true
    (has_code "ANL101"
       (Safety.check_query rs_schema
          (Query.make [ "x" ]
             (F.Exists ("z", F.Atom ("R", [ F.var "x"; F.var "x" ]))))));
  check bool_t "ANL101 clean" false
    (has_code "ANL101" (run "Q(x) := exists y. R(x, y)"));
  (* ANL102 trivial subformula *)
  check bool_t "ANL102 fires" true
    (has_code "ANL102"
       (Safety.check_query rs_schema
          (Query.make [ "x" ] (F.And (F.Atom ("S", [ F.var "x" ]), F.False)))));
  check bool_t "ANL102 self-equality" true
    (has_code "ANL102"
       (Safety.check_query rs_schema
          (Query.make [ "x" ]
             (F.And (F.Atom ("S", [ F.var "x" ]), F.Eq (F.var "x", F.var "x"))))));
  check bool_t "ANL102 clean" false (has_code "ANL102" (run "Q(x) := S(x)"));
  (* ANL103 top-level implication *)
  check bool_t "ANL103 fires" true
    (has_code "ANL103"
       (Safety.check_query rs_schema
          (Query.make []
             (F.Implies (F.Atom ("S", [ F.cst "a" ]), F.Atom ("S", [ F.cst "b" ]))))));
  check bool_t "ANL103 clean (nested implication)" false
    (has_code "ANL103"
       (Safety.check_query rs_schema
          (Query.make []
             (F.Forall
                ( "x",
                  F.Implies
                    (F.Atom ("S", [ F.var "x" ]), F.Atom ("R", [ F.var "x"; F.var "x" ])) )))))

(* ------------------------------------------------------------------ *)
(* Classifier and dispatch hints                                        *)
(* ------------------------------------------------------------------ *)

let test_classify_fragment () =
  let frag s = Classify.fragment (q s) in
  check string_t "cq" "CQ" (Fragment.fragment_name (frag "Q(x) := exists y. R(x, y)"));
  check string_t "ucq" "UCQ"
    (Fragment.fragment_name (frag "Q(x) := S(x) | exists y. R(x, y)"));
  check string_t "posforallg" "Pos∀G"
    (Fragment.fragment_name
       (Classify.fragment
          (Query.make []
             (F.Forall
                ( "x",
                  F.Implies
                    (F.Atom ("S", [ F.var "x" ]), F.Atom ("R", [ F.var "x"; F.var "x" ])) )))));
  check string_t "fo" "FO" (Fragment.fragment_name (frag "Q(x) := !S(x)"))

let test_constraint_class () =
  let empty = Classify.constraint_class [] in
  check bool_t "empty fd_only (vacuous)" true empty.Classify.fd_only;
  check bool_t "empty unary (vacuous)" true empty.Classify.unary_keys_fks;
  check int_t "empty count" 0 empty.Classify.n_constraints;
  let fds = Classify.constraint_class [ Dependency.fd "R" [ 0 ] 1 ] in
  check bool_t "fd set fd_only" true fds.Classify.fd_only;
  check bool_t "fd set not unary-keys-fks" false fds.Classify.unary_keys_fks;
  let keys = Classify.constraint_class [ Dependency.key "R" [ 0 ] ] in
  check bool_t "unary key fd_only" true keys.Classify.fd_only;
  check bool_t "unary key unary" true keys.Classify.unary_keys_fks;
  let wide_key = Classify.constraint_class [ Dependency.key "R" [ 0; 1 ] ] in
  check bool_t "binary key not unary" false wide_key.Classify.unary_keys_fks;
  let fks =
    Classify.constraint_class
      [ Dependency.key "S" [ 0 ]; Dependency.foreign_key "R" [ 0 ] "S" [ 0 ] ]
  in
  check bool_t "unary key+fk unary" true fks.Classify.unary_keys_fks;
  check bool_t "fk not fd_only" false fks.Classify.fd_only;
  let ind = Classify.constraint_class [ Dependency.ind "R" [ 0 ] "S" [ 0 ] ] in
  check bool_t "ind neither" false
    (ind.Classify.fd_only || ind.Classify.unary_keys_fks)

let test_dispatch_hints () =
  let cq = q "Q(x) := exists y. R(x, y)" in
  check string_t "cq hints" "ANL301,ANL302"
    (String.concat "," (codes (Classify.dispatch_hints cq)));
  let fo = q "Q(x) := !S(x)" in
  check string_t "fo hints" "" (String.concat "," (codes (Classify.dispatch_hints fo)));
  check bool_t "fd-only hint" true
    (has_code "ANL303"
       (Classify.dispatch_hints ~deps:[ Dependency.fd "R" [ 0 ] 1 ] cq));
  check bool_t "unary sat hint" true
    (has_code "ANL304"
       (Classify.dispatch_hints ~deps:[ Dependency.key "R" [ 0 ] ] cq));
  check bool_t "generic-procedures hint" true
    (has_code "ANL305"
       (Classify.dispatch_hints ~deps:[ Dependency.ind "R" [ 0 ] "S" [ 0 ] ] cq))

(* ------------------------------------------------------------------ *)
(* Cost analysis                                                        *)
(* ------------------------------------------------------------------ *)

let nulls_instance m =
  (* S(1) filled with m distinct nulls. *)
  Instance.of_rows (Schema.make [ ("S", 1) ])
    [ ("S", List.init m (fun i -> [ Value.null i ])) ]

let test_cost_small () =
  let c = Cost.analyse ~k:5 (nulls_instance 2) in
  check int_t "nulls" 2 c.Cost.nulls;
  check int_t "k" 5 c.Cost.k;
  check bool_t "machine value" true (c.Cost.machine = Some 25);
  check int_t "no diagnostics" 0 (List.length (Cost.diagnostics c))

let test_cost_large () =
  (* 16^8 ≈ 4.3e9 fits a 63-bit int but exceeds the 10^6 hint
     threshold: ANL202, not ANL201. *)
  let c = Cost.analyse ~k:16 (nulls_instance 8) in
  check bool_t "machine representable" true (c.Cost.machine <> None);
  check string_t "large-space hint" "ANL202" (String.concat "," (codes (Cost.diagnostics c)))

let test_cost_overflow () =
  (* 16^70 overflows any machine int: exhaustive enumeration is
     hopeless and ANL201 fires. *)
  let c = Cost.analyse ~k:16 (nulls_instance 70) in
  check bool_t "overflow detected" true (c.Cost.machine = None);
  check string_t "overflow warning" "ANL201"
    (String.concat "," (codes (Cost.diagnostics c)));
  (* The tuple's nulls count toward m. *)
  let c' =
    Cost.analyse ~k:5 ~tuple:(Tuple.of_list [ Value.null 100 ]) (nulls_instance 2)
  in
  check int_t "tuple nulls counted" 3 c'.Cost.nulls

(* ------------------------------------------------------------------ *)
(* Aggregate report                                                     *)
(* ------------------------------------------------------------------ *)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_report () =
  let inst =
    Instance.of_rows rs_schema
      [ ("R", [ [ Value.named "a"; Value.null 1 ] ]); ("S", [ [ Value.named "a" ] ]) ]
  in
  let deps = [ Dependency.fd "R" [ 0 ] 1 ] in
  let r = Report.analyze ~inst ~deps rs_schema (q "Q(x, y) := R(x, y)") in
  check bool_t "clean" false (Report.has_errors r);
  check bool_t "safe" true r.Report.safe;
  check bool_t "generic" true r.Report.generic;
  check bool_t "fragment is CQ" true (r.Report.fragment = Fragment.Cq);
  check bool_t "constraint class present" true (r.Report.cclass <> None);
  check bool_t "cost present" true (r.Report.cost <> None);
  let text = Report.to_text r in
  check bool_t "text names fragment" true (contains "CQ" text);
  check bool_t "text has verdict" true (contains "verdict" text);
  check bool_t "text has dispatch" true (contains "ANL301" text);
  let json = Report.to_json r in
  check bool_t "json fragment" true (contains "\"fragment\": \"CQ\"" json);
  check bool_t "json no errors" true (contains "\"errors\": 0" json);
  (* A non-generic query turns the report into an error. *)
  let bad = Report.analyze rs_schema (q "Q(x) := R(x, 'a')") in
  check bool_t "non-generic errors" true (Report.has_errors bad);
  check bool_t "ANL002 in report" true (has_code "ANL002" bad.Report.diags)

(* ------------------------------------------------------------------ *)
(* Classifier-driven dispatch in the engines                            *)
(* ------------------------------------------------------------------ *)

let test_certain_dispatch () =
  (* The dispatching entry point must agree with class enumeration on
     a Pos∀G-or-below query without constants (Corollary 3 says the
     fast path is exact there). *)
  let inst =
    Instance.of_rows rs_schema
      [ ("R",
         [ [ Value.named "a"; Value.null 1 ];
           [ Value.null 1; Value.named "b" ];
           [ Value.named "b"; Value.named "b" ] ]);
        ("S", [ [ Value.named "b" ]; [ Value.null 2 ] ]) ]
  in
  let rel_t =
    Alcotest.testable Relational.Relation.pp Relational.Relation.equal
  in
  List.iter
    (fun s ->
      let query = q s in
      check rel_t s
        (Certain.certain_answers_enumerated inst query)
        (Certain.certain_answers inst query))
    [ "Q(x) := exists y. R(x, y)";
      "Q(x, y) := R(x, y)";
      "Q(x) := S(x) | exists y. R(y, x)"
    ]

let test_conditional_dispatch () =
  let schema = Schema.make [ ("R", 2) ] in
  let inst =
    Instance.of_rows schema
      [ ("R", [ [ Value.named "a"; Value.null 1 ]; [ Value.named "a"; Value.named "b" ] ]) ]
  in
  let fd = Dependency.fd "R" [ 0 ] 1 in
  let query = q "Q(x, y) := R(x, y)" in
  let t = Tuple.of_list [ Value.named "a"; Value.named "b" ] in
  (* FD-only + null-free tuple routes through the chase… *)
  check bool_t "chase strategy" true
    (Conditional.strategy [ fd ] t = Conditional.Chase_fds);
  let strat, v = Conditional.mu_cond_auto schema [ fd ] inst query t in
  check bool_t "auto picked chase" true (strat = Conditional.Chase_fds);
  check rat_t "chase agrees with symbolic" v
    (Conditional.mu_cond_deps schema [ fd ] inst query t);
  (* …while a null in the tuple or a non-FD constraint forces the
     symbolic path. *)
  let t_null = Tuple.of_list [ Value.named "a"; Value.null 1 ] in
  check bool_t "null tuple symbolic" true
    (Conditional.strategy [ fd ] t_null = Conditional.Symbolic);
  check bool_t "ind symbolic" true
    (Conditional.strategy [ Dependency.ind "R" [ 0 ] "R" [ 1 ] ] t
    = Conditional.Symbolic);
  let strat', v' = Conditional.mu_cond_auto schema [ fd ] inst query t_null in
  check bool_t "auto picked symbolic" true (strat' = Conditional.Symbolic);
  check rat_t "symbolic value" v'
    (Conditional.mu_cond_deps schema [ fd ] inst query t_null)

let () =
  Alcotest.run "analysis"
    [ ( "diag",
        [ Alcotest.test_case "basics" `Quick test_diag_basics;
          Alcotest.test_case "registry" `Quick test_diag_registry;
          Alcotest.test_case "json" `Quick test_diag_json
        ] );
      ( "safety",
        [ Alcotest.test_case "range restriction" `Quick test_safety;
          Alcotest.test_case "per-code coverage" `Quick test_check_codes
        ] );
      ( "classify",
        [ Alcotest.test_case "fragment" `Quick test_classify_fragment;
          Alcotest.test_case "constraint class" `Quick test_constraint_class;
          Alcotest.test_case "dispatch hints" `Quick test_dispatch_hints
        ] );
      ( "cost",
        [ Alcotest.test_case "small" `Quick test_cost_small;
          Alcotest.test_case "large" `Quick test_cost_large;
          Alcotest.test_case "overflow" `Quick test_cost_overflow
        ] );
      ( "report", [ Alcotest.test_case "aggregate" `Quick test_report ] );
      ( "dispatch",
        [ Alcotest.test_case "certain answers" `Quick test_certain_dispatch;
          Alcotest.test_case "conditional measure" `Quick test_conditional_dispatch
        ] )
    ]
