(* Approximation-scheme grading (paper §6, "Quality of
   Approximations"): the two shipped schemes (SQL 3VL and null-free
   naive evaluation), the missed / spurious-benign / spurious-harmful
   classification by the measure µ, and the recall / precision /
   sound / complete summaries. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Parser = Logic.Parser
module Approx = Zeroone.Approx
module R = Arith.Rat

let check = Alcotest.check
let rat_t = Alcotest.testable R.pp R.equal

let rel_t =
  Alcotest.testable
    (fun fmt r ->
      Format.fprintf fmt "{%s}"
        (String.concat "; " (List.map Tuple.to_string (Relation.to_list r))))
    Relation.equal

let rel arity rows = Relation.of_rows arity rows
let c = Value.named
let n = Value.null

(* R = { c1, c2 }, S = { ~1 }: under every valuation the null takes a
   single value, so at least one of c1, c2 survives R ∖ S. *)
let rs_instance =
  Instance.of_rows
    (Schema.make [ ("R", 1); ("S", 1) ])
    [ ("R", [ [ c "c1" ]; [ c "c2" ] ]); ("S", [ [ n 1 ] ]) ]

(* SQL 3VL on the NOT IN pattern: the comparison against the null is
   'unknown' for both witnesses, so SQL returns nothing even though
   the sentence is certain. Sound but incomplete (§6). *)
let test_sql_sound_but_incomplete () =
  let q = Parser.query_exn "Q() := exists x. R(x) & !S(x)" in
  let r = Approx.evaluate Approx.sql_scheme rs_instance q in
  check rel_t "certain holds" (rel 0 [ [] ]) r.Approx.certain;
  check rel_t "sql returns nothing" (Relation.empty 0) r.Approx.returned;
  check rel_t "the certain answer is missed" (rel 0 [ [] ]) r.Approx.missed;
  check Alcotest.bool "sound" true (Approx.sound r);
  check Alcotest.bool "not complete" false (Approx.complete r);
  check rat_t "recall 0" R.zero (Approx.recall r);
  check rat_t "precision 1 (vacuous)" R.one (Approx.precision r)

(* Null-free naive evaluation on the same database, open query: the
   null in S is syntactically distinct from both constants, so naive
   evaluation returns {c1, c2} — neither is certain, but each is
   almost certainly true (µ = 1): spurious yet benign. *)
let test_naive_null_free_spurious_benign () =
  let q = Parser.query_exn "Q(x) := R(x) & !S(x)" in
  let r = Approx.evaluate Approx.naive_null_free_scheme rs_instance q in
  check rel_t "no certain answers" (Relation.empty 1) r.Approx.certain;
  check rel_t "naive returns both constants"
    (rel 1 [ [ c "c1" ]; [ c "c2" ] ])
    r.Approx.returned;
  check rel_t "both spurious answers are benign"
    (rel 1 [ [ c "c1" ]; [ c "c2" ] ])
    r.Approx.spurious_benign;
  check rel_t "no harmful answers" (Relation.empty 1) r.Approx.spurious_harmful;
  check Alcotest.bool "complete" true (Approx.complete r);
  check Alcotest.bool "not sound" false (Approx.sound r);
  check rat_t "recall 1 (no certain answers)" R.one (Approx.recall r);
  check rat_t "precision 0" R.zero (Approx.precision r)

(* The benign/harmful split itself, pinned with a hand-built scheme
   (schemes are just functions): a spurious tuple with µ = 1 lands in
   benign, one with µ = 0 in harmful. On R ∖ S with a null in S,
   'c1' is naively true (µ = 1) but not certain, while a fabricated
   constant is almost certainly false. *)
let test_benign_vs_harmful_classification () =
  let q = Parser.query_exn "Q(x) := R(x) & !S(x)" in
  let scheme _ _ = rel 1 [ [ c "c1" ]; [ c "z" ] ] in
  let r = Approx.evaluate scheme rs_instance q in
  check rel_t "no certain answers" (Relation.empty 1) r.Approx.certain;
  check rel_t "naive-true spurious tuple is benign"
    (rel 1 [ [ c "c1" ] ])
    r.Approx.spurious_benign;
  check rel_t "naive-false spurious tuple is harmful"
    (rel 1 [ [ c "z" ] ])
    r.Approx.spurious_harmful;
  check Alcotest.bool "not sound" false (Approx.sound r);
  check Alcotest.bool "complete (nothing certain)" true (Approx.complete r)

(* Fractional recall/precision: certain = {c1, c2}, scheme returns
   one true positive and one harmful fabrication. *)
let test_recall_precision_fractions () =
  let inst =
    Instance.of_rows
      (Schema.make [ ("R", 1) ])
      [ ("R", [ [ c "c1" ]; [ c "c2" ] ]) ]
  in
  let q = Parser.query_exn "Q(x) := R(x)" in
  let scheme _ _ = rel 1 [ [ c "c1" ]; [ c "z" ] ] in
  let r = Approx.evaluate scheme inst q in
  check rel_t "c2 is missed" (rel 1 [ [ c "c2" ] ]) r.Approx.missed;
  check rel_t "z is harmful" (rel 1 [ [ c "z" ] ]) r.Approx.spurious_harmful;
  check rat_t "recall 1/2" (R.of_ints 1 2) (Approx.recall r);
  check rat_t "precision 1/2" (R.of_ints 1 2) (Approx.precision r);
  check Alcotest.bool "not sound" false (Approx.sound r);
  check Alcotest.bool "not complete" false (Approx.complete r)

(* On a complete (null-free) database both shipped schemes coincide
   with the certain answers: sound, complete, recall = precision = 1. *)
let test_schemes_exact_on_complete_db () =
  let inst =
    Instance.of_rows
      (Schema.make [ ("R", 1); ("S", 1) ])
      [ ("R", [ [ c "c1" ]; [ c "c2" ] ]); ("S", [ [ c "c2" ] ]) ]
  in
  let q = Parser.query_exn "Q(x) := R(x) & !S(x)" in
  List.iter
    (fun (name, scheme) ->
      let r = Approx.evaluate scheme inst q in
      check rel_t (name ^ " returns exactly the certain answers")
        r.Approx.certain r.Approx.returned;
      check Alcotest.bool (name ^ " sound") true (Approx.sound r);
      check Alcotest.bool (name ^ " complete") true (Approx.complete r);
      check rat_t (name ^ " recall 1") R.one (Approx.recall r);
      check rat_t (name ^ " precision 1") R.one (Approx.precision r))
    [ ("sql", Approx.sql_scheme);
      ("naive-null-free", Approx.naive_null_free_scheme)
    ]

let () =
  Alcotest.run "approx"
    [ ( "schemes",
        [ Alcotest.test_case "sql: sound but incomplete" `Quick
            test_sql_sound_but_incomplete;
          Alcotest.test_case "naive-null-free: spurious but benign" `Quick
            test_naive_null_free_spurious_benign;
          Alcotest.test_case "exact on complete databases" `Quick
            test_schemes_exact_on_complete_db
        ] );
      ( "classification",
        [ Alcotest.test_case "benign vs harmful split" `Quick
            test_benign_vs_harmful_classification;
          Alcotest.test_case "fractional recall and precision" `Quick
            test_recall_precision_fractions
        ] )
    ]
