(* The (ε,δ)-approximate measure engine (lib/approx_measure): the
   Hoeffding sample-size bound, the splitmix64 sample streams, the
   seeded estimator against the exact µ^k / µ^k(Q|Σ) engines, the
   beyond-overflow per-digit sampling path, cross-jobs bit-identity,
   the serve `approx` op (including a deadline trip mid-sampling), and
   the well-formedness of the new counters and trace span. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Instance = Relational.Instance
module Tuple = Relational.Tuple
module Parser = Logic.Parser
module AE = Approx_measure.Estimator
module Srng = Approx_measure.Srng
module R = Arith.Rat
module W = Server.Wire
module Session = Server.Session
module Service = Server.Service

let check = Alcotest.check
let rat_t = Alcotest.testable R.pp R.equal
let c = Value.named
let n = Value.null
let rabs r = if R.compare r R.zero < 0 then R.sub R.zero r else r

(* The intro example, 2 nulls: exact µ^4 = 15/16, µ^6 = 35/36. *)
let schema = Schema.make [ ("R1", 2); ("R2", 2) ]

let db =
  Instance.of_rows schema
    [ ("R1", [ [ c "c1"; n 1 ] ]); ("R2", [ [ n 2; c "x" ] ]) ]

let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)"
let t = Parser.tuple_exn "('c1', ~1)"

(* --- parameters --------------------------------------------------- *)

let test_rat_of_string () =
  let ok s = match AE.rat_of_string s with
    | Ok r -> r
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  check rat_t "0.05" (R.of_ints 1 20) (ok "0.05");
  check rat_t ".5" (R.of_ints 1 2) (ok ".5");
  check rat_t "1/20" (R.of_ints 1 20) (ok "1/20");
  check rat_t "3" (R.of_ints 3 1) (ok "3");
  check rat_t "0.250 normalizes" (R.of_ints 1 4) (ok "0.250");
  List.iter
    (fun s ->
      match AE.rat_of_string s with
      | Ok r -> Alcotest.failf "%S accepted as %s" s (R.to_string r)
      | Error _ -> ())
    [ ""; "abc"; "1/0"; "0.0.5"; "-1"; "1e-3"; "1/"; "/2" ]

let test_sample_size () =
  let size e d = AE.sample_size ~eps:(R.of_ints 1 e) ~delta:(R.of_ints 1 d) in
  (* ⌈ln(2/δ)/(2ε²)⌉ at the gate's three working points *)
  check Alcotest.int "(1/20, 1/100)" 1060 (size 20 100);
  check Alcotest.int "(1/10, 1/20)" 185 (size 10 20);
  check Alcotest.int "(1/4, 1/4)" 17 (size 4 4);
  List.iter
    (fun (e, d) ->
      try
        ignore (AE.sample_size ~eps:e ~delta:d);
        Alcotest.failf "eps=%s delta=%s accepted" (R.to_string e)
          (R.to_string d)
      with Invalid_argument _ -> ())
    [ (R.zero, R.of_ints 1 2); (R.one, R.of_ints 1 2);
      (R.of_ints 1 2, R.zero); (R.of_ints 3 2, R.of_ints 1 2)
    ]

(* --- the sample streams ------------------------------------------- *)

let test_srng () =
  let a = Srng.of_seed 42 and b = Srng.of_seed 42 in
  for i = 1 to 100 do
    check Alcotest.int (Printf.sprintf "draw %d reproducible" i)
      (Srng.uniform a 1000) (Srng.uniform b 1000)
  done;
  let g = Srng.of_seed 7 in
  for _ = 1 to 10_000 do
    let v = Srng.uniform g 13 in
    if v < 0 || v >= 13 then Alcotest.failf "uniform out of range: %d" v
  done;
  check Alcotest.int "uniform _ 1 is 0" 0 (Srng.uniform (Srng.of_seed 1) 1);
  (* streams are keyed by (seed, index): same key, same tape *)
  let s1 = Srng.stream ~seed:3 ~index:9 and s2 = Srng.stream ~seed:3 ~index:9 in
  check Alcotest.int "stream reproducible" (Srng.uniform s1 1_000_000)
    (Srng.uniform s2 1_000_000);
  let s3 = Srng.stream ~seed:3 ~index:10 in
  (* adjacent streams diverge (splitmix64's whole point) *)
  let different = ref false in
  for _ = 1 to 20 do
    if Srng.uniform s1 1_000_000 <> Srng.uniform s3 1_000_000 then
      different := true
  done;
  check Alcotest.bool "adjacent streams diverge" true !different

(* --- estimator vs exact ------------------------------------------- *)

let eps10 = R.of_ints 1 10
let delta20 = R.of_ints 1 20

let test_accuracy () =
  (* Deterministic frequentist check of the Hoeffding promise: with
     (ε, δ) = (1/10, 1/20), at least (1−δ) of 100 fixed seeds must
     land within ε of the exact value — and, being seeded, the count
     never changes between runs. *)
  let k = 6 in
  let exact = Incomplete.Support.mu_k db q t ~k in
  check rat_t "exact µ^6 is 35/36" (R.of_ints 35 36) exact;
  let cache = Incomplete.Support.create_cache () in
  let trials = 100 in
  let within = ref 0 in
  for seed = 1 to trials do
    let e = AE.mu_k ~cache db q t ~k ~eps:eps10 ~delta:delta20 ~seed in
    check Alcotest.int "Hoeffding-sized" 185 e.AE.samples;
    if R.compare (rabs (R.sub e.AE.estimate exact)) eps10 <= 0 then
      incr within
  done;
  if !within < 95 then
    Alcotest.failf "only %d/%d trials within ε (need 95)" !within trials

let test_stratified_accuracy () =
  let k = 6 in
  let exact = Incomplete.Support.mu_k db q t ~k in
  let cache = Incomplete.Support.create_cache () in
  let trials = 30 in
  let within = ref 0 in
  for seed = 1 to trials do
    let e =
      AE.mu_k ~cache ~stratify:true db q t ~k ~eps:eps10 ~delta:delta20 ~seed
    in
    match e.AE.stratified with
    | None -> Alcotest.fail "stratify:true returned no stratified pass"
    | Some s ->
        (* 2 nulls, anchors present in [1..6]: null-support strata
           j = 0, 1, 2 all have positive weight *)
        check Alcotest.int "strata" 3 s.AE.s_strata;
        check Alcotest.bool "second pass spends at least as many samples"
          true
          (s.AE.s_samples >= e.AE.samples);
        if R.compare (rabs (R.sub s.AE.s_estimate exact)) eps10 <= 0 then
          incr within
  done;
  (* same (ε, δ) guarantee as the uniform pass: ≥ (1−δ)·30 ≈ 28.5 *)
  if !within < 28 then
    Alcotest.failf "only %d/%d stratified trials within ε (need 28)" !within
      trials

let digest (e : AE.t) =
  Printf.sprintf "%s|%s|%s|%d|%d|%s" (R.to_string e.AE.estimate)
    (R.to_string e.AE.ci_lo) (R.to_string e.AE.ci_hi) e.AE.samples e.AE.hits
    (match e.AE.stratified with
    | None -> "-"
    | Some s ->
        Printf.sprintf "%s|%s|%s|%d|%d"
          (R.to_string s.AE.s_estimate)
          (R.to_string s.AE.s_ci_lo)
          (R.to_string s.AE.s_ci_hi)
          s.AE.s_samples s.AE.s_strata)

let test_overflow_frontier () =
  (* k = 3·10^7 over 3 nulls ≈ 2.7·10^22 valuations — far past the
     2^62 rank frontier, so the sampler must draw per-null digits. *)
  let schema3 = Schema.make [ ("U", 3) ] in
  let db3 = Instance.of_rows schema3 [ ("U", [ [ n 1; n 2; n 3 ] ]) ] in
  let q3 = Parser.query_exn "Q() := exists x. U(x, x, x)" in
  let k = 30_000_000 in
  check Alcotest.(option int) "space size overflows" None
    (Incomplete.Enumerate.space_size ~nulls:[ 1; 2; 3 ] ~k);
  let eps = R.of_ints 1 4 and delta = R.of_ints 1 4 in
  let run jobs =
    AE.mu_k_boolean ~jobs ~stratify:true db3 q3 ~k ~eps ~delta ~seed:42
  in
  let e = run 1 in
  check Alcotest.int "17 samples suffice at (1/4, 1/4)" 17 e.AE.samples;
  check Alcotest.bool "estimate in [0,1]" true
    (R.compare R.zero e.AE.estimate <= 0 && R.compare e.AE.estimate R.one <= 0);
  check Alcotest.string "bit-identical at jobs=4" (digest e) (digest (run 4))

let test_conditional () =
  let e4 = Zeroone.Constructions.section4_example () in
  let d = e4.Zeroone.Constructions.s4_instance
  and cq = e4.Zeroone.Constructions.s4_query
  and ct = e4.Zeroone.Constructions.s4_tuple_third
  and sigma = e4.Zeroone.Constructions.s4_sigma in
  let k = 9 in
  let exact = Zeroone.Conditional.mu_cond_k ~sigma d cq ct ~k in
  check rat_t "exact µ^9(Q|Σ) is 1/3" (R.of_ints 1 3) exact;
  (* sized with δ/2 for the union bound over both frequencies *)
  let expected_n =
    AE.sample_size ~eps:eps10 ~delta:(R.div_int delta20 2)
  in
  let cache = Incomplete.Support.create_cache () in
  List.iter
    (fun seed ->
      let c =
        AE.mu_cond_k ~cache ~sigma d cq ct ~k ~eps:eps10 ~delta:delta20 ~seed
      in
      check Alcotest.int "δ/2-sized" expected_n c.AE.c_samples;
      check Alcotest.bool
        (Printf.sprintf "seed %d: CI [%s, %s] contains 1/3" seed
           (R.to_string c.AE.c_ci_lo)
           (R.to_string c.AE.c_ci_hi))
        true
        (R.compare c.AE.c_ci_lo exact <= 0
        && R.compare exact c.AE.c_ci_hi <= 0))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

(* --- randomized properties ---------------------------------------- *)

let eps4 = R.of_ints 1 4

let prop_well_formed =
  QCheck.Test.make ~name:"CI well-ordered and Hoeffding-sized, any seed"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let e = AE.mu_k db q t ~k:5 ~eps:eps4 ~delta:eps4 ~seed in
      R.compare R.zero e.AE.ci_lo <= 0
      && R.compare e.AE.ci_lo e.AE.estimate <= 0
      && R.compare e.AE.estimate e.AE.ci_hi <= 0
      && R.compare e.AE.ci_hi R.one <= 0
      && e.AE.samples = AE.sample_size ~eps:eps4 ~delta:eps4
      && e.AE.estimate = R.of_ints e.AE.hits e.AE.samples)

let prop_jobs_invariant =
  QCheck.Test.make ~name:"fixed seed is bit-identical across jobs" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let run jobs =
        AE.mu_k ~jobs ~stratify:true db q t ~k:6 ~eps:eps4 ~delta:eps4 ~seed
      in
      let d1 = digest (run 1) in
      String.equal d1 (digest (run 2)) && String.equal d1 (digest (run 4)))

(* --- the serve `approx` op ---------------------------------------- *)

let schema_s = "R1(c,p); R2(c,p)"
let db_s = "R1 = { ('c1', ~1) }; R2 = { (~2, 'x') }"
let query_s = "Q(x,y) := R1(x,y) & !R2(x,y)"

let parse_ok line =
  match W.parse_request line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "expected %s to parse, got: %s" line msg

let run_service ?guard line =
  let sessions = Session.create () in
  Service.handle ~sessions ~jobs:1 ?guard (parse_ok line)

let expect_ok = function
  | Ok payload -> payload
  | Error (err, msg) ->
      Alcotest.failf "expected success, got %s: %s" (W.error_code err) msg

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (W.error_code expected)
  | Error (err, msg) ->
      check Alcotest.string "typed error" (W.error_code expected)
        (W.error_code err);
      msg

let payload_str payload key =
  match List.assoc_opt key payload with
  | Some (W.S s) -> s
  | Some (W.I i) -> string_of_int i
  | _ -> Alcotest.failf "payload field %s missing" key

let payload_int payload key =
  match List.assoc_opt key payload with
  | Some (W.I i) -> i
  | _ -> Alcotest.failf "payload field %s missing or not an int" key

let approx_line ?(eps = "0.1") ?(delta = "0.05") ?(extra = []) () =
  W.obj
    ([ ("op", W.S "approx"); ("schema", W.S schema_s); ("db", W.S db_s);
       ("query", W.S query_s); ("tuple", W.S "('c1', ~1)"); ("k", W.I 6);
       ("eps", W.S eps); ("delta", W.S delta); ("seed", W.I 42)
     ]
    @ extra)

let test_serve_approx () =
  let payload = expect_ok (run_service (approx_line ())) in
  (* the wire answer IS the library answer for the same (seed, ε, δ) *)
  let e = AE.mu_k db q t ~k:6 ~eps:eps10 ~delta:delta20 ~seed:42 in
  check Alcotest.string "estimate" (R.to_string e.AE.estimate)
    (payload_str payload "estimate");
  check Alcotest.string "ci_lo" (R.to_string e.AE.ci_lo)
    (payload_str payload "ci_lo");
  check Alcotest.string "ci_hi" (R.to_string e.AE.ci_hi)
    (payload_str payload "ci_hi");
  check Alcotest.int "samples" e.AE.samples (payload_int payload "samples");
  check Alcotest.int "seed" 42 (payload_int payload "seed");
  check Alcotest.int "hits" e.AE.hits (payload_int payload "hits");
  (* stratify=1 adds the second pass's figures *)
  let payload =
    expect_ok (run_service (approx_line ~extra:[ ("stratify", W.I 1) ] ()))
  in
  let e =
    AE.mu_k ~stratify:true db q t ~k:6 ~eps:eps10 ~delta:delta20 ~seed:42
  in
  let s = Option.get e.AE.stratified in
  check Alcotest.string "stratified" (R.to_string s.AE.s_estimate)
    (payload_str payload "stratified");
  check Alcotest.int "strata" s.AE.s_strata (payload_int payload "strata");
  check Alcotest.int "stratified_samples" s.AE.s_samples
    (payload_int payload "stratified_samples")

let test_serve_approx_conditional () =
  let payload =
    expect_ok
      (run_service
         (W.obj
            [ ("op", W.S "approx"); ("schema", W.S "R(k,v); U(u)");
              ("db", W.S "R = { (~1, 'a') }; U = { ('c1') }");
              ("query", W.S "Q(x) := U(x)"); ("tuple", W.S "('c1')");
              ("k", W.I 5); ("eps", W.S "0.1"); ("delta", W.S "0.05");
              ("seed", W.I 42); ("constraints", W.S "ind R[1] <= U[1]")
            ]))
  in
  let num = payload_int payload "hits_num"
  and den = payload_int payload "hits_den" in
  check Alcotest.bool "numerator within denominator" true (num <= den);
  ignore (payload_str payload "estimate");
  ignore (payload_str payload "ci_lo");
  ignore (payload_str payload "ci_hi")

let test_serve_approx_bad_request () =
  (* missing k *)
  let msg =
    expect_err W.Bad_request
      (run_service
         (W.obj
            [ ("op", W.S "approx"); ("schema", W.S schema_s);
              ("db", W.S db_s); ("query", W.S query_s);
              ("tuple", W.S "('c1', ~1)"); ("eps", W.S "0.1");
              ("delta", W.S "0.05")
            ]))
  in
  check Alcotest.bool "names the missing field" true
    (String.length msg > 0);
  (* out-of-range eps *)
  ignore
    (expect_err W.Bad_request
       (run_service
          (W.obj
             [ ("op", W.S "approx"); ("schema", W.S schema_s);
               ("db", W.S db_s); ("query", W.S query_s);
               ("tuple", W.S "('c1', ~1)"); ("k", W.I 6);
               ("eps", W.S "1.5"); ("delta", W.S "0.05")
             ])));
  (* malformed delta *)
  ignore
    (expect_err W.Bad_request
       (run_service
          (W.obj
             [ ("op", W.S "approx"); ("schema", W.S schema_s);
               ("db", W.S db_s); ("query", W.S query_s);
               ("tuple", W.S "('c1', ~1)"); ("k", W.I 6);
               ("eps", W.S "0.1"); ("delta", W.S "zero")
             ])))

let test_serve_approx_deadline () =
  (* (ε, δ) = (0.001, 0.001) wants ~3.8M samples; a guard that trips
     after two pool chunks (the guard refines chunks to ≤ 2^16
     samples) aborts mid-sampling with the typed error. *)
  let calls = ref 0 in
  let guard () =
    incr calls;
    if !calls > 2 then raise Service.Deadline
  in
  let msg =
    expect_err W.Deadline_exceeded
      (run_service ~guard (approx_line ~eps:"0.001" ~delta:"0.001" ()))
  in
  check Alcotest.string "fixed message" "deadline exceeded" msg;
  check Alcotest.bool "the guard actually fired mid-run" true (!calls > 2)

(* --- observability ------------------------------------------------ *)

let test_metrics_counters () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    (fun () ->
      let e =
        AE.mu_k ~stratify:true db q t ~k:6 ~eps:eps10 ~delta:delta20 ~seed:42
      in
      let s = Option.get e.AE.stratified in
      check Alcotest.int "approx_samples counts both passes"
        (e.AE.samples + s.AE.s_samples)
        (Obs.Metrics.value Obs.Metrics.approx_samples);
      check Alcotest.int "approx_strata counts sampled strata"
        s.AE.s_strata
        (Obs.Metrics.value Obs.Metrics.approx_strata);
      (* each sample checked the one instantiated sentence *)
      check Alcotest.bool "samples also count as evaluations" true
        (Obs.Metrics.value Obs.Metrics.valuations_evaluated
        >= e.AE.samples + s.AE.s_samples))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_trace_span () =
  let path = Filename.temp_file "approx-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.enable_file path;
      ignore
        (AE.mu_k ~stratify:true db q t ~k:6 ~eps:eps10 ~delta:delta20 ~seed:1);
      Obs.Trace.close ();
      (match Obs.Trace.validate_file path with
      | Ok spans ->
          check Alcotest.bool "at least the approx.run span" true (spans >= 1)
      | Error e -> Alcotest.failf "trace does not validate: %s" e);
      check Alcotest.bool "approx.run span present" true
        (contains (read_file path) "approx.run"))

let () =
  Alcotest.run "approx_measure"
    [ ( "parameters",
        [ Alcotest.test_case "rat_of_string" `Quick test_rat_of_string;
          Alcotest.test_case "Hoeffding sample size" `Quick test_sample_size
        ] );
      ("srng", [ Alcotest.test_case "splitmix64 streams" `Quick test_srng ]);
      ( "estimator",
        [ Alcotest.test_case "accuracy vs exact µ^k" `Quick test_accuracy;
          Alcotest.test_case "stratified accuracy" `Quick
            test_stratified_accuracy;
          Alcotest.test_case "beyond the overflow frontier" `Quick
            test_overflow_frontier;
          Alcotest.test_case "conditional CI vs exact" `Quick test_conditional
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_well_formed; prop_jobs_invariant ] );
      ( "serve",
        [ Alcotest.test_case "approx round-trip" `Quick test_serve_approx;
          Alcotest.test_case "conditional approx" `Quick
            test_serve_approx_conditional;
          Alcotest.test_case "bad requests" `Quick
            test_serve_approx_bad_request;
          Alcotest.test_case "deadline mid-sampling" `Quick
            test_serve_approx_deadline
        ] );
      ( "observability",
        [ Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "trace span" `Quick test_trace_span
        ] )
    ]
