(* Tests for the null-dependency decomposition pipeline: the
   Depgraph/Decomp certificate, the factorized Support/Certain/
   Conditional evaluators, the per-component estimator and the
   weak-acyclicity chase-termination certificate.

   The load-bearing checks are randomized equivalences — the
   factorized engines must agree with the monolithic ones on every
   sound plan, and the static termination certificate must be honoured
   by the dynamic chase:

     Support.supp_count_plan     ≡ Support.count_satisfying (monolithic)
     Support.mu_k_plan           ≡ µ^k from the monolithic count
     Certain.*_sentence_plan     ≡ Certain.*_sentence
     Conditional.mu_cond_k_plans ≡ Conditional.mu_cond_k
     Wacyclic.Weakly_acyclic     ⇒ chase_tgds terminates within budget

   The generators are driven by explicit [Random.State] seeds, so every
   failure is reproducible from the printed seed. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Parser = Logic.Parser
module Dependency = Constraints.Dependency
module Wacyclic = Constraints.Wacyclic
module Chase = Constraints.Chase
module Factor = Incomplete.Factor
module Support = Incomplete.Support
module Certain = Incomplete.Certain
module Enumerate = Incomplete.Enumerate
module Decomp = Analysis.Decomp
module AE = Approx_measure.Estimator
module B = Arith.Bigint
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let seeds = List.init 300 Fun.id
let state seed = Random.State.make [| 0xdec0; seed |]

(* ------------------------------------------------------------------ *)
(* Fixtures: the two-block workload of bench/main.ml                    *)
(* ------------------------------------------------------------------ *)

let two_block_schema =
  Parser.schema_exn "R1(a, b); R2(a, b); S1(a, b); S2(a, b)"

let two_block_db =
  Parser.instance_exn two_block_schema
    "R1 = { ('c1', ~1), ('c2', ~2), ('c3', ~3) }; R2 = { ('c1', ~2), ('c2', \
     ~3) }; S1 = { ('d1', ~4), ('d2', ~5), ('d3', ~6) }; S2 = { ('d1', ~5), \
     ('d2', ~6) }"

let two_block_q =
  Parser.query_exn
    "Q() := R1('c1', 'c1') & !R2('c2', 'c2') & S1('d1', 'd1') & !S2('d2', \
     'd2')"

let two_block_sentence = Query.instantiate two_block_q Tuple.empty

let two_block_plan () =
  let d = Decomp.analyze two_block_db two_block_sentence in
  match Decomp.plan d with
  | Some p -> (d, p)
  | None -> Alcotest.fail "two-block sentence did not decompose"

(* ------------------------------------------------------------------ *)
(* Certificates                                                         *)
(* ------------------------------------------------------------------ *)

let test_two_block_certificate () =
  let d, plan = two_block_plan () in
  (match d.Decomp.verdict with
  | Decomp.Decomposable -> ()
  | v -> Alcotest.failf "expected Decomposable, got %s" (Decomp.verdict_string v));
  check int_t "parts" 2 (Decomp.parts d);
  check int_t "components" 2 (List.length plan.Factor.components);
  List.iter
    (fun (c : Factor.component) ->
      check int_t "component nulls" 3 (List.length c.Factor.c_nulls))
    plan.Factor.components;
  check int_t "free nulls" 0 (List.length plan.Factor.free_nulls);
  check int_t "all nulls" 6 (List.length plan.Factor.all_nulls)

let test_unguarded_indecomposable () =
  let q = Parser.query_exn "Q() := exists x. !R1(x, x)" in
  let d = Decomp.analyze two_block_db (Query.instantiate q Tuple.empty) in
  (match d.Decomp.verdict with
  | Decomp.Indecomposable reason ->
      check bool_t "reason nonempty" true (String.length reason > 0)
  | v -> Alcotest.failf "expected Indecomposable, got %s" (Decomp.verdict_string v));
  check bool_t "no plan" true (Decomp.plan d = None)

let test_free_nulls_factor () =
  (* Only the R-block is mentioned: the S-nulls are free and contribute
     a bare k^3 factor to the count, cancelling in µ^k. *)
  let q = Parser.query_exn "Q() := R1('c1', 'c1')" in
  let sentence = Query.instantiate q Tuple.empty in
  let d = Decomp.analyze two_block_db sentence in
  match Decomp.plan d with
  | None -> Alcotest.fail "free-null sentence did not plan"
  | Some plan ->
      check int_t "free nulls" 3 (List.length plan.Factor.free_nulls);
      List.iter
        (fun k ->
          let db = Support.kernel_db two_block_db in
          let mono =
            Support.count_satisfying ~db ~sentence
              ~nulls:plan.Factor.all_nulls ~k ()
          in
          check string_t
            (Printf.sprintf "count at k=%d" k)
            (B.to_string mono)
            (B.to_string (Support.supp_count_plan two_block_db plan ~k)))
        [ 2; 3; 5 ]

(* ------------------------------------------------------------------ *)
(* Randomized factorized-vs-monolithic equivalences                     *)
(* ------------------------------------------------------------------ *)

let schema = Schema.make [ ("R", 2); ("S", 2) ]

let gen_value st =
  match Random.State.int st 5 with
  | 0 | 1 -> Value.const (1 + Random.State.int st 3)
  | _ -> Value.null (1 + Random.State.int st 4)

let gen_instance st =
  let rows bound =
    List.init (Random.State.int st bound) (fun _ ->
        [ gen_value st; gen_value st ])
  in
  Instance.of_rows schema [ ("R", rows 4); ("S", rows 4) ]

(* Conjuncts are mostly ground literals over constants and nulls, with
   occasional guarded quantifiers — all shapes the planner must either
   factor soundly or refuse. *)
let gen_conjunct st =
  let t () = F.Val (gen_value st) in
  let atom rel = F.Atom (rel, [ t (); t () ]) in
  match Random.State.int st 8 with
  | 0 -> atom "R"
  | 1 -> atom "S"
  | 2 -> F.Not (atom "R")
  | 3 -> F.Not (atom "S")
  | 4 -> F.Eq (t (), t ())
  | 5 -> F.And (atom "R", F.Not (atom "S"))
  | 6 -> F.Exists ("x", F.Atom ("R", [ F.Var "x"; t () ]))
  | _ ->
      F.Forall
        ( "x",
          F.Implies
            (F.Atom ("S", [ F.Var "x"; F.Var "x" ]),
             F.Atom ("R", [ F.Var "x"; t () ])) )

let gen_sentence st =
  let n = 1 + Random.State.int st 4 in
  let rec conj i =
    if i = 1 then gen_conjunct st else F.And (gen_conjunct st, conj (i - 1))
  in
  conj n

let test_randomized_count_identity () =
  let decomposed = ref 0 in
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st in
      let sentence = gen_sentence st in
      let d = Decomp.analyze ~extra_nulls:(F.nulls sentence) inst sentence in
      match Decomp.plan d with
      | None -> (
          match d.Decomp.verdict with
          | Decomp.Indecomposable reason ->
              check bool_t "reason nonempty" true (String.length reason > 0)
          | _ -> Alcotest.fail "no plan but not Indecomposable")
      | Some plan ->
          if Decomp.parts d >= 2 then incr decomposed;
          let db = Support.kernel_db inst in
          List.iter
            (fun k ->
              let mono =
                Support.count_satisfying ~db ~sentence
                  ~nulls:plan.Factor.all_nulls ~k ()
              in
              check string_t
                (Printf.sprintf "seed %d k %d count" seed k)
                (B.to_string mono)
                (B.to_string (Support.supp_count_plan inst plan ~k));
              let total = Enumerate.count ~nulls:plan.Factor.all_nulls ~k in
              check string_t
                (Printf.sprintf "seed %d k %d mu" seed k)
                (R.to_string (R.make mono total))
                (R.to_string (Support.mu_k_plan inst plan ~k)))
            [ 2; 3; 5 ])
    seeds;
  (* the generator must actually exercise the factorized path *)
  check bool_t "decomposed often enough" true (!decomposed > 20)

let test_randomized_certain_identity () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st in
      let sentence = gen_sentence st in
      (* certain/possible run on the instance's own null space *)
      if
        List.for_all
          (fun n -> List.mem n (Instance.nulls inst))
          (F.nulls sentence)
      then
        let d = Decomp.analyze inst sentence in
        match Decomp.plan d with
        | None -> ()
        | Some plan ->
            check bool_t
              (Printf.sprintf "seed %d certain" seed)
              (Certain.is_certain_sentence inst sentence)
              (Certain.is_certain_sentence_plan inst plan);
            check bool_t
              (Printf.sprintf "seed %d possible" seed)
              (Certain.is_possible_sentence inst sentence)
              (Certain.is_possible_sentence_plan inst plan))
    seeds

let test_randomized_conditional_identity () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st in
      let sigma = gen_conjunct st in
      let q = Query.boolean (gen_sentence st) in
      let tuple = Tuple.empty in
      let dnum, dden = Zeroone.Conditional.cond_decomp ~sigma inst q tuple in
      match (Decomp.plan dnum, Decomp.plan dden) with
      | Some num_plan, Some den_plan ->
          List.iter
            (fun k ->
              check string_t
                (Printf.sprintf "seed %d k %d" seed k)
                (R.to_string
                   (Zeroone.Conditional.mu_cond_k ~sigma inst q tuple ~k))
                (R.to_string
                   (Zeroone.Conditional.mu_cond_k_plans ~num_plan ~den_plan
                      inst ~k)))
            [ 2; 3 ]
      | _ -> ())
    (List.filteri (fun i _ -> i < 150) seeds)

(* ------------------------------------------------------------------ *)
(* Per-component estimator                                              *)
(* ------------------------------------------------------------------ *)

let test_estimator_all_exact () =
  (* Every component fits under the exact cutoff: the "estimate" is the
     exact measure and the interval collapses to a point. *)
  let _, plan = two_block_plan () in
  let eps = R.of_ints 1 10 and delta = R.of_ints 1 10 in
  let r = AE.mu_k_plan two_block_db plan ~k:5 ~eps ~delta ~seed:7 in
  let exact = Support.mu_k_plan two_block_db plan ~k:5 in
  check string_t "estimate = exact" (R.to_string exact)
    (R.to_string r.AE.f_estimate);
  check string_t "ci lo collapses" (R.to_string exact)
    (R.to_string r.AE.f_ci_lo);
  check string_t "ci hi collapses" (R.to_string exact)
    (R.to_string r.AE.f_ci_hi);
  check int_t "no samples" 0 r.AE.f_samples;
  check int_t "sampled parts" 0 r.AE.f_sampled_parts;
  check int_t "exact parts" 2 r.AE.f_exact_parts

let big_schema = Parser.schema_exn "T(a, b); U(a, b)"

let big_db =
  Parser.instance_exn big_schema
    "T = { (~1, ~2), (~3, ~4), (~5, ~6) }; U = { ('c1', ~7) }"

let big_sentence =
  Query.instantiate
    (Parser.query_exn "Q() := !T('c1', 'c1') & U('c1', 'c1')")
    Tuple.empty

let test_estimator_sampled_component () =
  (* At k = 8 the T-component spans 8^6 = 262144 > 65536 valuations and
     is sampled with the full (ε/1, δ/1) budget; the U-component stays
     exact. The CI must cover the exact measure for this fixed seed,
     and the figure must not depend on ?jobs. *)
  let d = Decomp.analyze big_db big_sentence in
  let plan =
    match Decomp.plan d with
    | Some p -> p
    | None -> Alcotest.fail "big sentence did not plan"
  in
  check int_t "parts" 2 (Decomp.parts d);
  let eps = R.of_ints 1 5 and delta = R.of_ints 1 5 in
  let r = AE.mu_k_plan big_db plan ~k:8 ~eps ~delta ~seed:11 in
  check int_t "sampled parts" 1 r.AE.f_sampled_parts;
  check int_t "exact parts" 1 r.AE.f_exact_parts;
  check bool_t "samples drawn" true (r.AE.f_samples > 0);
  let exact = Support.mu_k_plan big_db plan ~k:8 in
  check bool_t "ci covers exact" true
    (R.compare r.AE.f_ci_lo exact <= 0 && R.compare exact r.AE.f_ci_hi <= 0);
  let r4 = AE.mu_k_plan ~jobs:4 big_db plan ~k:8 ~eps ~delta ~seed:11 in
  check string_t "jobs-independent" (R.to_string r.AE.f_estimate)
    (R.to_string r4.AE.f_estimate)

(* ------------------------------------------------------------------ *)
(* Weak acyclicity and the TGD chase                                    *)
(* ------------------------------------------------------------------ *)

let test_wacyclic_fixtures () =
  let sch = Parser.schema_exn "R(a); U(a)" in
  let w = Wacyclic.check sch [ Dependency.ind "R" [ 0 ] "U" [ 0 ] ] in
  check bool_t "R ⊆ U weakly acyclic" true (Wacyclic.is_weakly_acyclic w);
  check int_t "one regular edge" 1 w.Wacyclic.n_regular;
  check int_t "no special edge" 0 w.Wacyclic.n_special;
  let sch2 = Parser.schema_exn "E(a, b)" in
  let w2 = Wacyclic.check sch2 [ Dependency.ind "E" [ 1 ] "E" [ 0 ] ] in
  check bool_t "E[2] ⊆ E[1] cyclic" false (Wacyclic.is_weakly_acyclic w2);
  (match w2.Wacyclic.verdict with
  | Wacyclic.Special_cycle (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a nonempty special cycle");
  (* FD-only sets have no position edges at all *)
  let w3 = Wacyclic.check sch2 [ Dependency.fd "E" [ 0 ] 1 ] in
  check bool_t "FD-only weakly acyclic" true (Wacyclic.is_weakly_acyclic w3);
  check int_t "FD-only edges" 0 (w3.Wacyclic.n_regular + w3.Wacyclic.n_special)

let gen_dep st =
  let rel () = if Random.State.bool st then "R" else "S" in
  let col () = Random.State.int st 2 in
  match Random.State.int st 4 with
  | 0 -> Dependency.fd (rel ()) [ col () ] (col ())
  | 1 -> Dependency.key (rel ()) [ col () ]
  | 2 -> Dependency.ind (rel ()) [ col () ] (rel ()) [ col () ]
  | _ -> Dependency.foreign_key (rel ()) [ col () ] (rel ()) [ col () ]

let test_randomized_wacyclic_oracle () =
  List.iter
    (fun seed ->
      let st = state seed in
      let deps = List.init (1 + Random.State.int st 4) (fun _ -> gen_dep st) in
      let inst = gen_instance st in
      let w = Wacyclic.check schema deps in
      if Wacyclic.is_weakly_acyclic w then begin
        match Chase.chase_tgds ~max_steps:5000 schema deps inst with
        | Chase.Tgd_budget _ ->
            Alcotest.failf
              "seed %d: weakly acyclic set exhausted the chase budget" seed
        | Chase.Tgd_fixpoint _ | Chase.Tgd_failed _ -> ()
      end
      else
        match w.Wacyclic.verdict with
        | Wacyclic.Special_cycle (_ :: _) -> ()
        | _ -> Alcotest.failf "seed %d: cyclic verdict without a cycle" seed)
    seeds

let test_chase_tgds_repairs () =
  let sch = Parser.schema_exn "R(a); U(a)" in
  let inst = Parser.instance_exn sch "R = { ('c1') }; U = { }" in
  match Chase.chase_tgds sch [ Dependency.ind "R" [ 0 ] "U" [ 0 ] ] inst with
  | Chase.Tgd_fixpoint chased ->
      check int_t "U repaired" 1
        (Relational.Relation.cardinal (Instance.relation chased "U"))
  | _ -> Alcotest.fail "expected a fixpoint"

let () =
  Alcotest.run "decomp"
    [ ( "certificate",
        [ Alcotest.test_case "two-block workload" `Quick
            test_two_block_certificate;
          Alcotest.test_case "unguarded quantifier refused" `Quick
            test_unguarded_indecomposable;
          Alcotest.test_case "free nulls factor out" `Quick
            test_free_nulls_factor
        ] );
      ( "factorized-support",
        [ Alcotest.test_case "≡ monolithic count (randomized)" `Quick
            test_randomized_count_identity
        ] );
      ( "factorized-certain",
        [ Alcotest.test_case "≡ monolithic certainty (randomized)" `Quick
            test_randomized_certain_identity
        ] );
      ( "factorized-conditional",
        [ Alcotest.test_case "≡ monolithic µ^k(Q|Σ) (randomized)" `Quick
            test_randomized_conditional_identity
        ] );
      ( "estimator",
        [ Alcotest.test_case "all-exact plan collapses the CI" `Quick
            test_estimator_all_exact;
          Alcotest.test_case "oversized component is sampled" `Quick
            test_estimator_sampled_component
        ] );
      ( "wacyclic",
        [ Alcotest.test_case "fixtures" `Quick test_wacyclic_fixtures;
          Alcotest.test_case "WA ⇒ chase terminates (randomized)" `Quick
            test_randomized_wacyclic_oracle;
          Alcotest.test_case "inclusion repair reaches fixpoint" `Quick
            test_chase_tgds_repairs
        ] )
    ]
