(* Tests for valuations, enumeration, naïve evaluation, valuation
   classes, supports and certain answers. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Parser = Logic.Parser
module Valuation = Incomplete.Valuation
module Enumerate = Incomplete.Enumerate
module Naive = Incomplete.Naive
module Classes = Incomplete.Classes
module Support = Incomplete.Support
module Certain = Incomplete.Certain
module B = Arith.Bigint
module R = Arith.Rat
module P = Arith.Poly

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let bigint_t = Alcotest.testable B.pp B.equal
let rat_t = Alcotest.testable R.pp R.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* The intro example of the paper. *)
let intro_schema =
  Parser.schema_exn "R1(customer, product); R2(customer, product)"

let intro_db () =
  Parser.instance_exn intro_schema
    "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
     R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"

let intro_query () = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)"

(* ------------------------------------------------------------------ *)
(* Valuations                                                           *)
(* ------------------------------------------------------------------ *)

let test_valuation_basics () =
  let a = Relational.Names.intern "a" in
  let b = Relational.Names.intern "b" in
  let v = Valuation.of_list [ (1, a); (2, b); (3, a) ] in
  check bool_t "defined" true (Valuation.defined_on v [ 1; 2; 3 ]);
  check bool_t "missing" false (Valuation.defined_on v [ 4 ]);
  check (Alcotest.list int_t) "domain" [ 1; 2; 3 ] (Valuation.domain v);
  check int_t "range size" 2 (List.length (Valuation.range v));
  check bool_t "not injective" false (Valuation.is_injective v);
  check bool_t "injective" true
    (Valuation.is_injective (Valuation.of_list [ (1, a); (2, b) ]));
  check bool_t "bijective avoids" false
    (Valuation.is_bijective_for ~avoid:[ a ] (Valuation.of_list [ (1, a) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Valuation.of_list: null ~1 assigned twice") (fun () ->
      ignore (Valuation.of_list [ (1, a); (1, b) ]))

let test_valuation_apply () =
  let a = Relational.Names.intern "a" in
  let v = Valuation.of_list [ (1, a) ] in
  check bool_t "value" true
    (Value.equal (Value.const a) (Valuation.value v (Value.null 1)));
  check bool_t "const untouched" true
    (Value.equal (Value.named "z") (Valuation.value v (Value.named "z")));
  let d = intro_db () in
  let n1 = Relational.Names.intern "p1" in
  let v =
    Valuation.of_list [ (1, n1); (2, n1); (3, n1) ]
  in
  let vd = Valuation.instance v d in
  check bool_t "complete" true (Instance.is_complete vd);
  (* ~1 = ~2 = ~3 = p1 collapses R2 to {(c1,p1),(c2,p1),(p1,p1)} *)
  check int_t "R2 size after collapse" 3
    (Relation.cardinal (Instance.relation vd "R2"))

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)
(* ------------------------------------------------------------------ *)

let test_enumerate_count () =
  List.iter
    (fun (m, k) ->
      let nulls = Arith.Combinat.range 1 m in
      let vs = Enumerate.all_valuations ~nulls ~k in
      check int_t
        (Printf.sprintf "m=%d k=%d" m k)
        (int_of_float (float_of_int k ** float_of_int m))
        (List.length vs);
      check bigint_t "count agrees" (Enumerate.count ~nulls ~k)
        (B.of_int (List.length vs)))
    [ (0, 5); (1, 4); (2, 3); (3, 3) ]

(* The bool-array implementation of fold_bijective against the
   original List.mem reference, including avoid lists with duplicates
   and codes outside [1, k] (which must simply be ignored). *)
let test_bijective_equals_reference () =
  let reference ~nulls ~avoid ~k f acc =
    let rec go acc used assigned = function
      | [] -> f acc (Valuation.of_list assigned)
      | n :: rest ->
          let acc = ref acc in
          for c = 1 to k do
            if (not (List.mem c avoid)) && not (List.mem c used) then
              acc := go !acc (c :: used) ((n, c) :: assigned) rest
          done;
          !acc
    in
    go acc [] [] nulls
  in
  let visited fold =
    List.rev (fold (fun acc v -> Valuation.bindings v :: acc) [])
  in
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0xb17; seed |] in
      let m = Random.State.int st 4 in
      let k = Random.State.int st 6 in
      let nulls = List.init m (fun i -> i + 1) in
      let avoid =
        List.init (Random.State.int st 5) (fun _ ->
            Random.State.int st 9 - 1 (* may fall outside [1, k], repeat *))
      in
      check bool_t
        (Printf.sprintf "fold_bijective = reference (seed %d)" seed)
        true
        (visited (reference ~nulls ~avoid ~k)
        = visited (Enumerate.fold_bijective ~nulls ~avoid ~k)))
    (List.init 200 Fun.id)

let test_enumerate_bijective () =
  let nulls = [ 1; 2 ] in
  let avoid = [ 1; 2 ] in
  (* k=5: codes {3,4,5} available, injective pairs: 3*2 = 6 *)
  let count = ref 0 in
  let () =
    Enumerate.fold_bijective ~nulls ~avoid ~k:5 (fun () v ->
        check bool_t "is bijective" true (Valuation.is_bijective_for ~avoid v);
        incr count) ()
  in
  check int_t "bijective count" 6 !count;
  check bigint_t "count formula" (B.of_int 6)
    (Enumerate.count_bijective ~nulls ~avoid ~k:5);
  let fresh = Enumerate.fresh_bijective ~nulls ~avoid in
  check bool_t "fresh is bijective" true
    (Valuation.is_bijective_for ~avoid fresh)

(* ------------------------------------------------------------------ *)
(* Naïve evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let test_naive_intro_example () =
  let d = intro_db () in
  let q = intro_query () in
  let naive = Naive.answers d q in
  (* Naïve evaluation returns (c1,⊥1) and (c2,⊥2). *)
  let expected =
    Relation.of_list 2
      [ Tuple.of_list [ Value.named "c1"; Value.null 1 ];
        Tuple.of_list [ Value.named "c2"; Value.null 2 ]
      ]
  in
  check relation_t "naive answers" expected naive

let test_naive_via_bijective_agrees () =
  let d = intro_db () in
  let queries =
    [ intro_query ();
      Parser.query_exn "Q(x, y) := R1(x, y)";
      Parser.query_exn "Q(x) := exists y. R1(x, y) & R2(x, y)";
      Parser.query_exn "Q() := exists x. exists y. R1(x, y) & !R2(x, y)";
      Parser.query_exn "Q(y) := forall x. R2(x, y) -> R1(x, y)"
    ]
  in
  List.iter
    (fun q ->
      check relation_t (Query.to_string q) (Naive.answers d q)
        (Naive.answers_via_bijective d q))
    queries

let test_naive_via_bijective_valuation_choice () =
  (* Proposition 1: the choice of C-bijective valuation is irrelevant. *)
  let d = intro_db () in
  let q = intro_query () in
  let avoid =
    List.sort_uniq Int.compare (Query.constants q @ Instance.constants d)
  in
  let base = 1000 in
  let v1 = Valuation.of_list [ (1, base + 1); (2, base + 2); (3, base + 3) ] in
  let v2 = Valuation.of_list [ (1, base + 7); (2, base + 5); (3, base + 9) ] in
  check bool_t "v1 bijective" true (Valuation.is_bijective_for ~avoid v1);
  check relation_t "same result"
    (Naive.answers_via_bijective ~valuation:v1 d q)
    (Naive.answers_via_bijective ~valuation:v2 d q)

(* ------------------------------------------------------------------ *)
(* Classes                                                              *)
(* ------------------------------------------------------------------ *)

let test_classes_count () =
  (* m nulls, anchor set of size a: #classes = Σ_partitions Σ_injective maps. *)
  let classes = Classes.enumerate ~anchor_set:[ 1; 2 ] ~nulls:[ 7; 8 ] in
  (* partitions of {7,8}: {{7},{8}} and {{7,8}}.
     - 2 blocks: anchor maps: 1 + 2*2 + 2 = 7
     - 1 block: 1 + 2 = 3.  Total 10. *)
  check int_t "class count" 10 (List.length classes)

let test_classes_total_poly () =
  (* Σ_classes |class ∩ V^k| = k^m. *)
  List.iter
    (fun (anchor_set, nulls) ->
      let total = Classes.total_poly ~anchor_set ~nulls in
      let m = List.length nulls in
      List.iter
        (fun k ->
          check rat_t
            (Printf.sprintf "a=%d m=%d k=%d" (List.length anchor_set) m k)
            (R.of_bigint (Arith.Combinat.power k m))
            (P.eval_int total k))
        [ List.length anchor_set; 5; 8; 13 ])
    [ ([], [ 1 ]); ([ 1 ], [ 1; 2 ]); ([ 1; 2 ], [ 1; 2 ]); ([ 1; 2; 3 ], [ 1; 2; 5 ]) ]

let test_classes_partition_valuations () =
  (* Classifying all of V^k(D) and counting per class must agree with
     each class polynomial evaluated at k. *)
  let anchor_set = [ 1; 2 ] in
  let nulls = [ 4; 5 ] in
  let k = 6 in
  let classes = Classes.enumerate ~anchor_set ~nulls in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let c = Classes.classify ~anchor_set ~nulls v in
      let key =
        List.find_opt (fun c' -> Classes.same_class c c') classes
      in
      match key with
      | None -> Alcotest.fail "valuation not covered by any class"
      | Some c' ->
          let s = Format.asprintf "%a" Classes.pp c' in
          Hashtbl.replace counts s
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    (Enumerate.all_valuations ~nulls ~k);
  List.iter
    (fun c ->
      let s = Format.asprintf "%a" Classes.pp c in
      let expected = P.eval_int (Classes.count_poly ~anchor_set c) k in
      let actual = R.of_int (Option.value ~default:0 (Hashtbl.find_opt counts s)) in
      check rat_t ("class size " ^ s) expected actual)
    classes

let test_classes_representative_roundtrip () =
  let anchor_set = [ 1; 3 ] in
  let nulls = [ 1; 2; 3 ] in
  List.iter
    (fun c ->
      let v = Classes.representative ~anchor_set c in
      let c' = Classes.classify ~anchor_set ~nulls v in
      check bool_t "roundtrip" true (Classes.same_class c c'))
    (Classes.enumerate ~anchor_set ~nulls)

(* ------------------------------------------------------------------ *)
(* Supports and µ^k                                                     *)
(* ------------------------------------------------------------------ *)

let test_mu_k_closed_forms () =
  (* D: R = {(⊥,⊥')}, Q = ∃x R(x,x).  µ^k = 1/k (⊥=⊥' required). *)
  let schema = Schema.make [ ("R", 2) ] in
  let d =
    Instance.of_rows schema [ ("R", [ [ Value.null 1; Value.null 2 ] ]) ]
  in
  let q = Parser.query_exn "exists x. R(x, x)" in
  List.iter
    (fun k ->
      check rat_t
        (Printf.sprintf "1/k at k=%d" k)
        (R.of_ints 1 k)
        (Support.mu_k_boolean d q ~k))
    [ 1; 2; 3; 5; 8 ];
  (* And its negation has µ^k = 1 - 1/k. *)
  let qn = Query.negate q in
  List.iter
    (fun k ->
      check rat_t
        (Printf.sprintf "1-1/k at k=%d" k)
        (R.sub R.one (R.of_ints 1 k))
        (Support.mu_k_boolean d qn ~k))
    [ 1; 2; 3; 5; 8 ]

let test_mu_k_intro_tuples () =
  (* For the intro example and tuple ā = (c1,⊥1): v ∈ Supp iff
     v(⊥1) ≠ v(⊥2) (else R2's (c1,⊥2) kills it) and v(⊥3) ≠ c1 (else
     R2's (⊥3,⊥1) kills it). For k past every database constant this
     gives µ^k = k(k−1)(k−1)/k³ = (k−1)²/k², which increases to 1. *)
  let d = intro_db () in
  let q = intro_query () in
  let a = Tuple.of_list [ Value.named "c1"; Value.null 1 ] in
  let k0 = Instance.max_constant d in
  let ks = List.map (fun i -> k0 + i) [ 1; 2; 3; 4 ] in
  List.iter
    (fun (k, v) ->
      check rat_t
        (Printf.sprintf "(k-1)^2/k^2 at k=%d" k)
        (R.of_ints ((k - 1) * (k - 1)) (k * k))
        v)
    (Support.mu_k_series d q a ~ks)

let test_support_membership () =
  let d = intro_db () in
  let q = intro_query () in
  let a = Tuple.of_list [ Value.named "c1"; Value.null 1 ] in
  let p1 = Relational.Names.intern "pp1" in
  let p2 = Relational.Names.intern "pp2" in
  let p3 = Relational.Names.intern "pp3" in
  (* distinct values: (c1,⊥1) survives *)
  let v_good = Valuation.of_list [ (1, p1); (2, p2); (3, p3) ] in
  check bool_t "in support" true (Support.in_support d q a v_good);
  (* ⊥1 = ⊥2 kills it *)
  let v_bad = Valuation.of_list [ (1, p1); (2, p1); (3, p3) ] in
  check bool_t "not in support" false (Support.in_support d q a v_bad)

(* ------------------------------------------------------------------ *)
(* Certain and possible answers                                         *)
(* ------------------------------------------------------------------ *)

let test_certain_intro () =
  let d = intro_db () in
  let q = intro_query () in
  check relation_t "no certain answers" (Relation.empty 2)
    (Certain.certain_answers d q);
  (* but both naive answers are possible answers *)
  check bool_t "possible (c1,~1)" true
    (Certain.is_possible d q (Tuple.of_list [ Value.named "c1"; Value.null 1 ]));
  check bool_t "possible (c2,~2)" true
    (Certain.is_possible d q (Tuple.of_list [ Value.named "c2"; Value.null 2 ]));
  (* (c2,⊥1) is in R2 outright, so it can never satisfy R1 ∧ ¬R2. *)
  check bool_t "not possible (c2,~1)" false
    (Certain.is_possible d q (Tuple.of_list [ Value.named "c2"; Value.null 1 ]))

let test_certain_identity_query () =
  (* If Q returns R1 then □(Q,D) = R1 (the argument for certain answers
     with nulls, §1). *)
  let d = intro_db () in
  let q = Parser.query_exn "Q(x, y) := R1(x, y)" in
  check relation_t "certain = R1" (Instance.relation d "R1")
    (Certain.certain_answers d q);
  (* The intersection-based variant returns only null-free tuples: none here. *)
  check relation_t "null-free certain empty" (Relation.empty 2)
    (Certain.certain_answers_null_free d q)

let test_certain_sentences () =
  let d = intro_db () in
  check bool_t "R1 nonempty is certain" true
    (Certain.is_certain_sentence d
       (Parser.formula_exn "exists x. exists y. R1(x, y)"));
  check bool_t "Q certain false" false
    (Certain.is_certain_sentence d
       (Parser.formula_exn "exists x. exists y. R1(x, y) & !R2(x, y)"));
  check bool_t "but possible" true
    (Certain.is_possible_sentence d
       (Parser.formula_exn "exists x. exists y. R1(x, y) & !R2(x, y)"));
  check bool_t "contradiction impossible" false
    (Certain.is_possible_sentence d
       (Parser.formula_exn "exists x. R1(x, x) & !R1(x, x)"))

let test_certain_vs_bruteforce () =
  (* Class-based certainty must agree with quantifying over all
     valuations with a sufficiently large range (here: brute force over
     k = |A| + m constants suffices by the small-range property). *)
  let d = intro_db () in
  let queries =
    [ Parser.query_exn "Q() := exists x. exists y. R1(x, y) & !R2(x, y)";
      Parser.query_exn "Q() := exists x. exists y. R1(x, y) & R2(x, y)";
      Parser.query_exn "Q() := forall x. forall y. R1(x, y) -> R2(x, y)";
      Parser.query_exn "Q() := exists x. R2(x, x)"
    ]
  in
  List.iter
    (fun q ->
      let sentence = Query.instantiate q Tuple.empty in
      let anchor = Support.anchor_set d q in
      let k = List.fold_left max 0 anchor + Instance.null_count d in
      let brute =
        Enumerate.fold_valuations ~nulls:(Instance.nulls d) ~k
          (fun acc v -> acc && Support.sentence_in_support d sentence v)
          true
      in
      check bool_t (Query.to_string q) brute
        (Certain.is_certain_sentence d sentence))
    queries

let prop_naive_superset_certain =
  (* Corollary 1: □(Q,D) ⊆ Q^naive(D) for generic queries. Random small
     instances and a fixed family of queries. *)
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("v" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  let queries =
    [ Parser.query_exn "Q(x, y) := R(x, y) & !S(x, y)";
      Parser.query_exn "Q(x) := exists y. R(x, y) | S(y, x)";
      Parser.query_exn "Q(x) := forall y. S(x, y) -> R(x, y)"
    ]
  in
  QCheck.Test.make ~name:"certain ⊆ naive (Cor. 1)" ~count:60 inst_gen
    (fun d ->
      List.for_all
        (fun q ->
          Relation.subset (Certain.certain_answers d q) (Naive.answers d q))
        queries)

let prop_ucq_certain_is_naive =
  (* Classical: for UCQs naive evaluation computes certain answers. *)
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("w" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  let queries =
    [ Parser.query_exn "Q(x) := exists y. R(x, y)";
      Parser.query_exn "Q(x, y) := R(x, y) | S(x, y)";
      Parser.query_exn "Q(x) := exists y. R(x, y) & S(y, x)"
    ]
  in
  (* certain_answers_enumerated, not certain_answers: the dispatching
     entry point would route UCQs through naive evaluation and make the
     equality a tautology. *)
  QCheck.Test.make ~name:"UCQ: certain = naive" ~count:40 inst_gen (fun d ->
      List.for_all
        (fun q ->
          Relation.equal
            (Certain.certain_answers_enumerated d q)
            (Naive.answers d q))
        queries)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                           *)
(* ------------------------------------------------------------------ *)

let test_complete_database_degenerate () =
  (* No nulls: V^k(D) is the single empty valuation, and every notion
     collapses onto ordinary evaluation. *)
  let schema = Schema.make [ ("R", 2) ] in
  let d = Instance.of_rows schema [ ("R", [ [ Value.named "p"; Value.named "q" ] ]) ] in
  let q = Parser.query_exn "Q(x, y) := R(x, y)" in
  let t = Tuple.consts [ "p"; "q" ] in
  check bool_t "certain" true (Certain.is_certain d q t);
  check rat_t "mu_k is 1" R.one (Support.mu_k d q t ~k:3);
  check rat_t "mu_k of non-answer" R.zero
    (Support.mu_k d q (Tuple.consts [ "q"; "p" ]) ~k:3);
  check int_t "single class" 1
    (List.length (Classes.enumerate ~anchor_set:[ 1; 2 ] ~nulls:[]))

let test_valuation_printing () =
  let a = Relational.Names.intern "pv" in
  let v = Valuation.of_list [ (3, a) ] in
  check Alcotest.string "to_string" "{~3 -> pv}" (Valuation.to_string v);
  check Alcotest.string "empty" "{}" (Valuation.to_string Valuation.empty)

let test_preimage_relation () =
  let a = Relational.Names.intern "qa" in
  let v = Valuation.of_list [ (1, a) ] in
  let candidates =
    Relation.of_list 1
      [ Tuple.of_list [ Value.null 1 ]; Tuple.of_list [ Value.named "other" ] ]
  in
  let answers = Relation.of_list 1 [ Tuple.of_list [ Value.const a ] ] in
  let pre = Valuation.preimage_relation v candidates answers in
  check int_t "one preimage" 1 (Relation.cardinal pre);
  check bool_t "the null tuple" true (Relation.mem (Tuple.of_list [ Value.null 1 ]) pre)

let prop_bijective_count_matches_enumeration =
  QCheck.Test.make ~name:"count_bijective = enumerated count" ~count:100
    (QCheck.triple (QCheck.int_range 0 3) (QCheck.int_range 0 3)
       (QCheck.int_range 0 6)) (fun (m, a, k) ->
      let nulls = Arith.Combinat.range 1 m in
      let avoid = Arith.Combinat.range 1 a in
      let counted =
        Enumerate.fold_bijective ~nulls ~avoid ~k (fun n _ -> n + 1) 0
      in
      B.equal (B.of_int counted) (Enumerate.count_bijective ~nulls ~avoid ~k))

let prop_possible_iff_some_valuation =
  (* is_possible_sentence agrees with a bounded brute-force search. *)
  let schema = Schema.make [ ("R", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 2)
        else Value.named ("ip" ^ string_of_int (-i mod 2)))
      (QCheck.int_range (-4) 3)
  in
  let inst_gen =
    QCheck.map
      (fun rows ->
        Instance.of_rows schema [ ("R", List.map (fun (a, b) -> [ a; b ]) rows) ])
      (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
         (QCheck.pair value_gen value_gen))
  in
  QCheck.Test.make ~name:"possible = brute force over small range" ~count:60
    inst_gen (fun d ->
      List.for_all
        (fun s ->
          let f = Parser.formula_exn s in
          let anchor = Support.anchor_set_sentences d [ f ] in
          let k = List.fold_left max 0 anchor + Instance.null_count d in
          let brute =
            Enumerate.fold_valuations ~nulls:(Instance.nulls d) ~k
              (fun acc v -> acc || Support.sentence_in_support d f v)
              false
          in
          brute = Certain.is_possible_sentence d f)
        [ "exists x. R(x, x)"; "forall x. forall y. R(x, y) -> R(y, x)" ])

let prop_posforallg_certain_is_naive =
  (* Corollary 3 (via Gheerbrant-Libkin-Sirangelo): for Pos∀G queries,
     certain answers = almost-certainly-true answers = naive answers. *)
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("pg" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  let queries =
    [ Parser.query_exn "Q(x) := exists y. R(x, y)";
      Parser.query_exn "Q(x) := forall y. forall z. S(y, z) -> R(x, y)";
      Parser.query_exn
        "Q() := forall y. forall z. R(y, z) -> (S(y, z) | (exists w. S(z, w)))"
    ]
  in
  List.iter
    (fun q ->
      assert (Logic.Fragment.is_pos_forall_guard q.Query.body))
    queries;
  QCheck.Test.make ~name:"Pos∀G: certain = naive (Cor 3)" ~count:40 inst_gen
    (fun d ->
      List.for_all
        (fun q ->
          Relation.equal
            (Certain.certain_answers_enumerated d q)
            (Naive.answers d q))
        queries)

let () =
  Alcotest.run "incomplete"
    [ ( "valuation",
        [ Alcotest.test_case "basics" `Quick test_valuation_basics;
          Alcotest.test_case "application" `Quick test_valuation_apply
        ] );
      ( "enumerate",
        [ Alcotest.test_case "counts" `Quick test_enumerate_count;
          Alcotest.test_case "bijective" `Quick test_enumerate_bijective;
          Alcotest.test_case "bijective ≡ List.mem reference" `Quick
            test_bijective_equals_reference
        ] );
      ( "naive",
        [ Alcotest.test_case "intro example" `Quick test_naive_intro_example;
          Alcotest.test_case "direct = bijective (Def. 3)" `Quick
            test_naive_via_bijective_agrees;
          Alcotest.test_case "valuation choice irrelevant (Prop. 1)" `Quick
            test_naive_via_bijective_valuation_choice
        ] );
      ( "classes",
        [ Alcotest.test_case "enumeration count" `Quick test_classes_count;
          Alcotest.test_case "total polynomial = k^m" `Quick
            test_classes_total_poly;
          Alcotest.test_case "class sizes at k" `Quick
            test_classes_partition_valuations;
          Alcotest.test_case "representative roundtrip" `Quick
            test_classes_representative_roundtrip
        ] );
      ( "support",
        [ Alcotest.test_case "closed forms" `Quick test_mu_k_closed_forms;
          Alcotest.test_case "intro series" `Quick test_mu_k_intro_tuples;
          Alcotest.test_case "membership" `Quick test_support_membership
        ] );
      ( "certain",
        [ Alcotest.test_case "intro example" `Quick test_certain_intro;
          Alcotest.test_case "identity query" `Quick test_certain_identity_query;
          Alcotest.test_case "sentences" `Quick test_certain_sentences;
          Alcotest.test_case "class-based = brute force" `Quick
            test_certain_vs_bruteforce
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "complete database" `Quick
            test_complete_database_degenerate;
          Alcotest.test_case "valuation printing" `Quick test_valuation_printing;
          Alcotest.test_case "preimage relation" `Quick test_preimage_relation
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_naive_superset_certain; prop_ucq_certain_is_naive;
            prop_posforallg_certain_is_naive;
            prop_bijective_count_matches_enumeration;
            prop_possible_iff_some_valuation ] )
    ]
