(* Tests for the compiled evaluation kernel: Relational.Index,
   Logic.Compiled, Incomplete.Split and Incomplete.Kernel, plus the
   queue machinery of the persistent Exec.Pool.

   The load-bearing checks are the randomized equivalences — the
   compiled pipeline must agree with the structural interpreter on
   every instance, formula and valuation:

     Compiled.holds  ≡ Eval.holds
     Split.complete  ≡ Valuation.instance
     Kernel.holds    ≡ Support.sentence_in_support_naive

   The generators are driven by explicit [Random.State] seeds, so every
   failure is reproducible from the printed seed. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Index = Relational.Index
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Eval = Logic.Eval
module Compiled = Logic.Compiled
module Parser = Logic.Parser
module Valuation = Incomplete.Valuation
module Split = Incomplete.Split
module Kernel = Incomplete.Kernel
module Support = Incomplete.Support
module R = Arith.Rat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Seeded generators                                                    *)
(* ------------------------------------------------------------------ *)

let schema = Schema.make [ ("R", 2); ("S", 1) ]
let var_pool = [ "x"; "y"; "z" ]

let gen_value st ~with_nulls =
  if with_nulls && Random.State.int st 3 = 0 then
    Value.null (Random.State.int st 3)
  else Value.const (1 + Random.State.int st 4)

let gen_instance st ~with_nulls =
  let rows bound arity =
    List.init (Random.State.int st bound) (fun _ ->
        List.init arity (fun _ -> gen_value st ~with_nulls))
  in
  Instance.of_rows schema [ ("R", rows 5 2); ("S", rows 4 1) ]

let gen_term st ~vars ~with_nulls =
  let value () = F.Val (gen_value st ~with_nulls) in
  if vars = [] || Random.State.int st 3 = 0 then value ()
  else F.Var (List.nth vars (Random.State.int st (List.length vars)))

(* All connectives and both quantifiers, with possible shadowing (the
   bound-variable pool has three names, so nesting reuses them). *)
let rec gen_formula st ~vars ~depth ~with_nulls =
  let term () = gen_term st ~vars ~with_nulls in
  let sub ?(vars = vars) () =
    gen_formula st ~vars ~depth:(depth - 1) ~with_nulls
  in
  if depth = 0 then
    match Random.State.int st 4 with
    | 0 -> F.Atom ("R", [ term (); term () ])
    | 1 -> F.Atom ("S", [ term () ])
    | 2 -> F.Eq (term (), term ())
    | _ -> if Random.State.bool st then F.True else F.False
  else
    match Random.State.int st 6 with
    | 0 -> F.Not (sub ())
    | 1 -> F.And (sub (), sub ())
    | 2 -> F.Or (sub (), sub ())
    | 3 -> F.Implies (sub (), sub ())
    | _ ->
        let v = List.nth var_pool (Random.State.int st 3) in
        let body = sub ~vars:(v :: vars) () in
        if Random.State.int st 6 = 4 then F.Exists (v, body)
        else F.Forall (v, body)

let gen_valuation st nulls =
  Valuation.of_list (List.map (fun n -> (n, 1 + Random.State.int st 5)) nulls)

let seeds = List.init 300 Fun.id
let state seed = Random.State.make [| 0x5eed; seed |]

(* ------------------------------------------------------------------ *)
(* Relational.Index                                                     *)
(* ------------------------------------------------------------------ *)

let rel_of_pairs pairs =
  Relation.of_rows 2
    (List.map (fun (a, b) -> [ Value.const a; Value.const b ]) pairs)

let test_index_mem () =
  let rel = rel_of_pairs [ (1, 2); (1, 3); (2, 3) ] in
  let idx = Index.of_relation rel in
  check int_t "arity" 2 (Index.arity idx);
  check int_t "cardinal" 3 (Index.cardinal idx);
  Relation.iter
    (fun t -> check bool_t "member" true (Index.mem idx t))
    rel;
  check bool_t "non-member" false
    (Index.mem idx (Tuple.of_list [ Value.const 2; Value.const 2 ]));
  check bool_t "wrong arity" false
    (Index.mem idx (Tuple.of_list [ Value.const 1 ]));
  check bool_t "mem_values" true
    (Index.mem_values idx [| Value.const 1; Value.const 3 |])

let test_index_select () =
  let rel = rel_of_pairs [ (1, 2); (1, 3); (2, 3); (3, 1) ] in
  let idx = Index.of_relation rel in
  let tuples bindings =
    List.map Tuple.to_list (Index.select idx bindings)
  in
  check int_t "select col0=1" 2
    (List.length (tuples [ (0, Value.const 1) ]));
  check int_t "select col1=3" 2
    (List.length (tuples [ (1, Value.const 3) ]));
  check int_t "select both" 1
    (List.length (tuples [ (0, Value.const 1); (1, Value.const 3) ]));
  check int_t "select absent" 0
    (List.length (tuples [ (0, Value.const 9) ]));
  check int_t "select all" 4 (List.length (tuples []));
  (* every posting carries the probed value in the probed column *)
  let post = Index.postings idx ~column:0 (Value.const 1) in
  check int_t "postings count" 2 (List.length post);
  List.iter
    (fun t ->
      check bool_t "posting matches" true
        (Value.equal (Tuple.get t 0) (Value.const 1)))
    post;
  check int_t "column_cardinal" 2
    (Index.column_cardinal idx ~column:0 (Value.const 1))

let test_index_randomized () =
  List.iter
    (fun seed ->
      let st = state seed in
      let rel =
        Relation.of_rows 2
          (List.init (Random.State.int st 8) (fun _ ->
               [ gen_value st ~with_nulls:true; gen_value st ~with_nulls:true ]))
      in
      let idx = Index.of_relation rel in
      (* mem agrees with Relation.mem on members and random probes *)
      Relation.iter
        (fun t -> check bool_t "index member" true (Index.mem idx t))
        rel;
      for _ = 1 to 5 do
        let t =
          Tuple.of_list
            [ gen_value st ~with_nulls:true; gen_value st ~with_nulls:true ]
        in
        check bool_t "index probe = Relation.mem" (Relation.mem t rel)
          (Index.mem idx t)
      done)
    (List.filteri (fun i _ -> i < 100) seeds)

(* ------------------------------------------------------------------ *)
(* Logic.Compiled ≡ Eval                                                *)
(* ------------------------------------------------------------------ *)

let test_compiled_equals_eval () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      let f =
        gen_formula st ~vars:[ "x"; "y" ] ~depth:3 ~with_nulls:false
      in
      let dom = Eval.domain inst f in
      let pick () =
        match dom with
        | [] -> Value.const 1
        | _ -> List.nth dom (Random.State.int st (List.length dom))
      in
      let t = Compiled.compile inst f in
      (* one compiled formula, several environments: the scratch reset
         between evaluations is part of what is under test *)
      for _ = 1 to 3 do
        let env = [ ("x", pick ()); ("y", pick ()) ] in
        check bool_t
          (Printf.sprintf "compiled = eval (seed %d)" seed)
          (Eval.holds inst env f)
          (Compiled.holds t env)
      done)
    seeds

let test_compiled_sentences () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      let f = gen_formula st ~vars:[] ~depth:3 ~with_nulls:false in
      check bool_t
        (Printf.sprintf "compiled sentence = eval (seed %d)" seed)
        (Eval.sentence_holds inst f)
        (Compiled.sentence_holds (Compiled.compile inst f)))
    seeds

let test_compiled_open_formula_rejected () =
  let inst = Instance.of_rows schema [] in
  let f = F.Atom ("S", [ F.Var "x" ]) in
  Alcotest.check_raises "unbound variable"
    (Invalid_argument "Compiled: unbound variable x") (fun () ->
      ignore (Compiled.holds (Compiled.compile inst f) []))

(* ------------------------------------------------------------------ *)
(* Split ≡ Valuation.instance                                           *)
(* ------------------------------------------------------------------ *)

let test_split_equals_valuation_instance () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      let split = Split.of_instance inst in
      check bool_t "nulls hoisted" true
        (Split.nulls split = Instance.nulls inst);
      check bool_t "constants hoisted" true
        (Split.constants split = Instance.constants inst);
      for _ = 1 to 3 do
        let v = gen_valuation st (Instance.nulls inst) in
        check bool_t
          (Printf.sprintf "complete = Valuation.instance (seed %d)" seed)
          true
          (Instance.equal (Valuation.instance v inst) (Split.complete split v))
      done)
    seeds

let test_split_ground_shared () =
  let inst =
    Instance.of_rows schema
      [ ("R",
         [ [ Value.const 1; Value.const 2 ]; [ Value.const 1; Value.null 0 ] ]);
        ("S", [ [ Value.const 3 ] ])
      ]
  in
  let split = Split.of_instance inst in
  check int_t "one null tuple" 1 (Split.null_tuple_count split);
  check int_t "ground keeps the rest" 2
    (Instance.total_tuples (Split.ground split));
  check bool_t "ground is complete" true (Instance.is_complete (Split.ground split))

(* ------------------------------------------------------------------ *)
(* Kernel ≡ naive support check                                         *)
(* ------------------------------------------------------------------ *)

let test_kernel_equals_naive () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      (* sentences may mention nulls (instantiated Q(ā) does) *)
      let s = gen_formula st ~vars:[] ~depth:3 ~with_nulls:true in
      let nulls =
        List.sort_uniq Int.compare (Instance.nulls inst @ F.nulls s)
      in
      let kern = Kernel.compile (Kernel.db_of_instance inst) s in
      (* one kernel, several valuations: per-valuation scratch refresh
         is the hot path under test *)
      for _ = 1 to 4 do
        let v = gen_valuation st nulls in
        check bool_t
          (Printf.sprintf "kernel = naive (seed %d)" seed)
          (Support.sentence_in_support_naive inst s v)
          (Kernel.holds kern v)
      done)
    seeds

let test_checker_cache_consistent () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      let s = gen_formula st ~vars:[] ~depth:2 ~with_nulls:true in
      let nulls =
        List.sort_uniq Int.compare (Instance.nulls inst @ F.nulls s)
      in
      let cache = Support.create_cache () in
      let chk = Support.checker ~cache (Support.kernel_db ~cache inst) s in
      for _ = 1 to 3 do
        let v = gen_valuation st nulls in
        let expect = Support.sentence_in_support_naive inst s v in
        check bool_t "checker cold" expect (Support.check chk v);
        check bool_t "checker warm" expect (Support.check chk v);
        check bool_t "one-shot cached entry point" expect
          (Support.sentence_in_support ~cache inst s v)
      done)
    (List.filteri (fun i _ -> i < 100) seeds)

(* ------------------------------------------------------------------ *)
(* Odometer ≡ valuation_of_rank                                         *)
(* ------------------------------------------------------------------ *)

module Enumerate = Incomplete.Enumerate

(* Random small spaces: up to 5 nulls with k ∈ 1..5 capped so k^m stays
   enumerable, then a random [lo, hi) sub-range. The odometer must
   reproduce valuation_of_rank at every rank — including across carry
   cascades — both through [valuation] and through [fold_digits_range]. *)
let test_odometer_equals_rank () =
  List.iter
    (fun seed ->
      let st = state seed in
      let m = Random.State.int st 5 in
      let k = 1 + Random.State.int st 5 in
      let nulls =
        List.sort_uniq Int.compare
          (List.init m (fun _ -> Random.State.int st 10))
      in
      let n =
        match Enumerate.space_size ~nulls ~k with
        | Some n -> n
        | None -> Alcotest.fail "space unexpectedly overflows"
      in
      let lo = Random.State.int st n in
      let hi = lo + Random.State.int st (min (n - lo) 700 + 1) in
      (* stepping odometer vs per-rank decode *)
      let od = Enumerate.odometer ~nulls ~k ~rank:lo in
      for r = lo to hi - 1 do
        let expect = Enumerate.valuation_of_rank ~nulls ~k r in
        check bool_t
          (Printf.sprintf "odometer = rank %d (seed %d)" r seed)
          true
          (Valuation.equal expect (Enumerate.valuation od));
        Enumerate.step od
      done;
      (* fold_digits_range visits the same digit vectors in rank order *)
      let ranks =
        Enumerate.fold_digits_range ~nulls ~k ~lo ~hi
          (fun acc digits -> Array.copy digits :: acc)
          []
      in
      check int_t "fold_digits_range length" (hi - lo) (List.length ranks);
      List.iteri
        (fun i digits ->
          let r = hi - 1 - i in
          let expect = Enumerate.valuation_of_rank ~nulls ~k r in
          let got =
            Valuation.of_list
              (List.mapi (fun j nl -> (nl, digits.(j))) nulls)
          in
          check bool_t
            (Printf.sprintf "digits = rank %d (seed %d)" r seed)
            true
            (Valuation.equal expect got))
        ranks)
    seeds

let test_odometer_wraps_and_rejects () =
  let nulls = [ 1; 2 ] in
  let od = Enumerate.odometer ~nulls ~k:3 ~rank:8 in
  check bool_t "last rank = all 3s" true (Enumerate.digits od = [| 3; 3 |]);
  Enumerate.step od;
  check bool_t "wraps to all 1s" true (Enumerate.digits od = [| 1; 1 |]);
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Enumerate.odometer: rank out of range") (fun () ->
      ignore (Enumerate.odometer ~nulls ~k:3 ~rank:9));
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Enumerate.odometer: k < 1") (fun () ->
      ignore (Enumerate.odometer ~nulls ~k:0 ~rank:0));
  (* the empty space has exactly one (empty) valuation *)
  let od0 = Enumerate.odometer ~nulls:[] ~k:4 ~rank:0 in
  check int_t "no digits" 0 (Array.length (Enumerate.digits od0));
  Enumerate.step od0 (* must not raise *)

(* ------------------------------------------------------------------ *)
(* Kernel digit fast path ≡ holds                                       *)
(* ------------------------------------------------------------------ *)

(* holds_digits must agree with holds — and with the naive reference —
   at every rank, under sequential stepping, random jumps (chunk
   boundaries) and interleaving with the Valuation path (which
   invalidates the delta state). *)
let digit_path_agrees ~name inst sentence ~k =
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ F.nulls sentence)
  in
  let kern = Kernel.compile (Kernel.db_of_instance inst) sentence in
  let refkern = Kernel.compile (Kernel.db_of_instance inst) sentence in
  Kernel.prepare_digits kern ~nulls;
  let n =
    match Incomplete.Enumerate.space_size ~nulls ~k with
    | Some n -> n
    | None -> Alcotest.fail "space too large for the test"
  in
  (* sequential sweep via fold_digits_range *)
  let () =
    Enumerate.fold_digits_range ~nulls ~k ~lo:0 ~hi:n
      (fun r digits ->
        let v = Enumerate.valuation_of_rank ~nulls ~k r in
        check bool_t
          (Printf.sprintf "%s: digits = holds at rank %d" name r)
          (Kernel.holds refkern v)
          (Kernel.holds_digits kern digits);
        r + 1)
      0
    |> fun final -> check int_t (name ^ ": swept all") n final
  in
  (* random jumps: seed a fresh odometer at scattered ranks, stressing
     the prev-digits comparison with non-adjacent changes *)
  let st = state 77 in
  for _ = 1 to 50 do
    let r = Random.State.int st n in
    let od = Enumerate.odometer ~nulls ~k ~rank:r in
    check bool_t
      (Printf.sprintf "%s: digits = holds at jump rank %d" name r)
      (Kernel.holds refkern (Enumerate.valuation_of_rank ~nulls ~k r))
      (Kernel.holds_digits kern (Enumerate.digits od))
  done;
  (* interleaving with the Valuation path invalidates and recovers *)
  let st = state 78 in
  for _ = 1 to 20 do
    let r = Random.State.int st n in
    let v = Enumerate.valuation_of_rank ~nulls ~k r in
    let expect = Kernel.holds refkern v in
    check bool_t (name ^ ": holds interleaved") expect (Kernel.holds kern v);
    let od = Enumerate.odometer ~nulls ~k ~rank:r in
    check bool_t (name ^ ": digits after holds") expect
      (Kernel.holds_digits kern (Enumerate.digits od))
  done

let test_digits_section4 () =
  let e = Zeroone.Constructions.section4_example () in
  let d = e.Zeroone.Constructions.s4_instance in
  let sigma = e.Zeroone.Constructions.s4_sigma in
  let q = e.Zeroone.Constructions.s4_query in
  let answer =
    Logic.Query.instantiate q e.Zeroone.Constructions.s4_tuple_third
  in
  digit_path_agrees ~name:"§4 Σ" d sigma ~k:4;
  digit_path_agrees ~name:"§4 Q(ā)" d answer ~k:4

let test_digits_two_block () =
  let sch =
    Parser.schema_exn "R1(a, b); R2(a, b); S1(a, b); S2(a, b)"
  in
  let d =
    Parser.instance_exn sch
      "R1 = { ('c1', ~1), ('c2', ~2), ('c3', ~3) }; R2 = { ('c1', ~2), \
       ('c2', ~3) }; S1 = { ('d1', ~4), ('d2', ~5), ('d3', ~6) }; S2 = { \
       ('d1', ~5), ('d2', ~6) }"
  in
  let q =
    Parser.query_exn
      "Q() := R1('c1', 'c1') & !R2('c2', 'c2') & S1('d1', 'd1') & \
       !S2('d2', 'd2')"
  in
  digit_path_agrees ~name:"two-block"
    d (Logic.Query.instantiate q Tuple.empty) ~k:3

let test_digits_randomized () =
  List.iter
    (fun seed ->
      let st = state seed in
      let inst = gen_instance st ~with_nulls:true in
      let s = gen_formula st ~vars:[] ~depth:2 ~with_nulls:true in
      let nulls =
        List.sort_uniq Int.compare (Instance.nulls inst @ F.nulls s)
      in
      let k = 2 in
      match Enumerate.space_size ~nulls ~k with
      | Some n when n <= 256 ->
          let kern = Kernel.compile (Kernel.db_of_instance inst) s in
          Kernel.prepare_digits kern ~nulls;
          ignore
            (Enumerate.fold_digits_range ~nulls ~k ~lo:0 ~hi:n
               (fun r digits ->
                 check bool_t
                   (Printf.sprintf "digits = naive (seed %d, rank %d)" seed r)
                   (Support.sentence_in_support_naive inst s
                      (Enumerate.valuation_of_rank ~nulls ~k r))
                   (Kernel.holds_digits kern digits);
                 r + 1)
               0)
      | _ -> ())
    (List.filteri (fun i _ -> i < 100) seeds)

let test_digits_guards () =
  let inst = gen_instance (state 3) ~with_nulls:true in
  let s = F.Atom ("S", [ F.Val (Value.null 7) ]) in
  let kern = Kernel.compile (Kernel.db_of_instance inst) s in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls inst @ F.nulls s)
  in
  (* unprepared / mismatched sweeps are rejected *)
  Alcotest.check_raises "unprepared"
    (Invalid_argument
       "Kernel.holds_digits: prepare_digits with the sweep's nulls first")
    (fun () -> ignore (Kernel.holds_digits kern (Array.make 1 1)));
  (match nulls with
  | _ :: rest when rest <> [] ->
      Alcotest.check_raises "missing null"
        (Invalid_argument
           (Printf.sprintf
              "Kernel.prepare_digits: sweep misses null ~%d of the instance \
               or sentence"
              (List.hd nulls)))
        (fun () -> Kernel.prepare_digits kern ~nulls:rest)
  | _ -> ());
  Kernel.prepare_digits kern ~nulls;
  Alcotest.check_raises "code < 1"
    (Invalid_argument "Kernel.holds_digits: code < 1") (fun () ->
      ignore
        (Kernel.holds_digits kern (Array.make (List.length nulls) 0)))

(* ------------------------------------------------------------------ *)
(* Exec.Dls per-domain memo                                             *)
(* ------------------------------------------------------------------ *)

let test_dls_memoizes () =
  let builds = ref 0 in
  let memo = Exec.Dls.create ~eq:Int.equal () in
  let get k =
    Exec.Dls.find_or_add memo k ~mk:(fun () -> incr builds; k * 10)
  in
  check int_t "built" 10 (get 1);
  check int_t "memoized" 10 (get 1);
  check int_t "second key" 20 (get 2);
  check int_t "one build per key" 2 !builds

let test_dls_cap_evicts_oldest () =
  let builds = ref 0 in
  let memo = Exec.Dls.create ~cap:2 ~eq:Int.equal () in
  let get k = Exec.Dls.find_or_add memo k ~mk:(fun () -> incr builds; k) in
  ignore (get 1); ignore (get 2); ignore (get 3);
  (* 1 was evicted; 2 and 3 survive *)
  check int_t "three builds" 3 !builds;
  ignore (get 3); ignore (get 2);
  check int_t "2 and 3 still cached" 3 !builds;
  ignore (get 1);
  check int_t "1 rebuilt after eviction" 4 !builds

let test_dls_per_domain () =
  (* each domain builds its own value — entries never cross domains *)
  let memo = Exec.Dls.create ~eq:Int.equal () in
  let mine () =
    Exec.Dls.find_or_add memo 0 ~mk:(fun () -> Domain.self ())
  in
  let here = mine () in
  check bool_t "stable on caller" true (here = mine ());
  let d = Domain.spawn (fun () -> mine ()) in
  let there = Domain.join d in
  check bool_t "distinct per domain" false (here = there)

let test_dls_backs_domain_kernel () =
  let inst = gen_instance (state 11) ~with_nulls:true in
  let s = gen_formula (state 11) ~vars:[] ~depth:2 ~with_nulls:false in
  let db = Kernel.db_of_instance inst in
  let k1 = Support.domain_kernel db s in
  let k2 = Support.domain_kernel db s in
  check bool_t "same kernel on one domain" true (k1 == k2);
  (* the memo keys by instance generation, not physical identity: a
     rebuilt db of the same instance shares the kernel (the stale-hit
     bug was the converse — equal-looking dbs of different states
     colliding), while a genuinely updated instance gets its own *)
  let db' = Kernel.db_of_instance inst in
  check bool_t "rebuilt db of same instance, same kernel" true
    (Support.domain_kernel db' s == k1);
  let inst2 =
    Instance.add_tuple "R"
      (Tuple.of_list [ Value.const 97; Value.const 98 ])
      inst
  in
  let db2 = Kernel.db_of_instance inst2 in
  check bool_t "updated instance, distinct kernel" false
    (Support.domain_kernel db2 s == k1)

(* ------------------------------------------------------------------ *)
(* Worked examples                                                      *)
(* ------------------------------------------------------------------ *)

let test_intro_example () =
  (* The introduction's customer/product database: certain answers via
     the kernelized class sweep, and µ^k via the kernelized count, must
     reproduce the numbers the seed computed with the naive engine. *)
  let sch = Parser.schema_exn "R1(customer, product); R2(customer, product)" in
  let d =
    Parser.instance_exn sch
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
       R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  let t = Parser.tuple_exn "('c1', ~1)" in
  check bool_t "('c1',~1) not certain" false (Incomplete.Certain.is_certain d q t);
  let mu = Support.mu_k d q t ~k:8 in
  (* independently recount with the naive reference *)
  let sentence = Logic.Query.instantiate q t in
  let nulls =
    List.sort_uniq Int.compare (Instance.nulls d @ Tuple.nulls t)
  in
  let count = ref 0 and total = ref 0 in
  Incomplete.Enumerate.fold_valuations ~nulls ~k:8
    (fun () v ->
      incr total;
      if Support.sentence_in_support_naive d sentence v then incr count)
    ();
  check bool_t "µ^8 = naive recount" true
    (R.equal mu (R.of_ints !count !total))

let test_section4_example () =
  let e = Zeroone.Constructions.section4_example () in
  let sigma = e.Zeroone.Constructions.s4_sigma in
  let d = e.Zeroone.Constructions.s4_instance in
  let q = e.Zeroone.Constructions.s4_query in
  check bool_t "§4 µ = 1/3" true
    (R.equal (R.of_ints 1 3)
       (Zeroone.Conditional.mu_cond ~sigma d q
          e.Zeroone.Constructions.s4_tuple_third));
  check bool_t "§4 µ = 2/3" true
    (R.equal (R.of_ints 2 3)
       (Zeroone.Conditional.mu_cond ~sigma d q
          e.Zeroone.Constructions.s4_tuple_two_thirds))

(* ------------------------------------------------------------------ *)
(* Persistent pool machinery                                            *)
(* ------------------------------------------------------------------ *)

(* The shared pool on a single-core box has zero workers, so these
   tests build explicit two-worker pools to exercise the queue. *)

let with_pool f = Exec.Pool.with_pool ~workers:2 f

let test_pool_queue_fold () =
  with_pool (fun pool ->
      check int_t "worker count" 2 (Exec.Pool.worker_count pool);
      (* many folds reuse the same workers — no spawn per fold *)
      for round = 1 to 20 do
        List.iter
          (fun jobs ->
            let n = 64 * round in
            let got =
              Exec.Pool.fold_range ~pool ~jobs ~min_work:1 ~n
                ~chunk:(fun lo hi ->
                  let s = ref 0 in
                  for i = lo to hi - 1 do s := !s + i done;
                  !s)
                ~combine:( + ) 0
            in
            check int_t
              (Printf.sprintf "pool sum n=%d jobs=%d" n jobs)
              (n * (n - 1) / 2)
              got)
          [ 2; 3; 8 ]
      done)

let test_pool_queue_exception () =
  with_pool (fun pool ->
      Alcotest.check_raises "first error in chunk order" (Failure "chunk1")
        (fun () ->
          ignore
            (Exec.Pool.fold_range ~pool ~jobs:4 ~min_work:1 ~n:16
               ~chunk:(fun lo _ ->
                 if lo > 0 then failwith (Printf.sprintf "chunk%d" (lo / 4))
                 else 0)
               ~combine:( + ) 0));
      (* the pool survives the failed fold *)
      check int_t "pool alive after exception" 10
        (Exec.Pool.fold_range ~pool ~jobs:4 ~min_work:1 ~n:5
           ~chunk:(fun lo hi ->
             let s = ref 0 in
             for i = lo to hi - 1 do s := !s + i done;
             !s)
           ~combine:( + ) 0))

let test_pool_shutdown_idempotent () =
  let pool = Exec.Pool.create ~workers:1 () in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  check bool_t "shutdown twice" true true

let test_pool_nested_folds () =
  (* a chunk of an outer fold issues its own pool fold: the caller
     drains the queue while waiting, so this must not deadlock even
     with every chunk nested *)
  with_pool (fun pool ->
      let got =
        Exec.Pool.fold_range ~pool ~jobs:3 ~min_work:1 ~n:30
          ~chunk:(fun lo hi ->
            Exec.Pool.fold_range ~pool ~jobs:2 ~min_work:1 ~n:(hi - lo)
              ~chunk:(fun l h ->
                let s = ref 0 in
                for i = l to h - 1 do s := !s + (lo + i) done;
                !s)
              ~combine:( + ) 0)
          ~combine:( + ) 0
      in
      check int_t "nested folds" (30 * 29 / 2) got)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kernel"
    [ ( "index",
        [ Alcotest.test_case "mem" `Quick test_index_mem;
          Alcotest.test_case "select/postings" `Quick test_index_select;
          Alcotest.test_case "randomized vs Relation.mem" `Quick
            test_index_randomized
        ] );
      ( "compiled",
        [ Alcotest.test_case "≡ Eval.holds (randomized)" `Quick
            test_compiled_equals_eval;
          Alcotest.test_case "≡ Eval.sentence_holds (randomized)" `Quick
            test_compiled_sentences;
          Alcotest.test_case "open formula rejected" `Quick
            test_compiled_open_formula_rejected
        ] );
      ( "split",
        [ Alcotest.test_case "≡ Valuation.instance (randomized)" `Quick
            test_split_equals_valuation_instance;
          Alcotest.test_case "ground fragment" `Quick test_split_ground_shared
        ] );
      ( "kernel",
        [ Alcotest.test_case "≡ naive support check (randomized)" `Quick
            test_kernel_equals_naive;
          Alcotest.test_case "checker + cache consistent" `Quick
            test_checker_cache_consistent;
          Alcotest.test_case "intro example" `Quick test_intro_example;
          Alcotest.test_case "§4 example" `Quick test_section4_example
        ] );
      ( "odometer",
        [ Alcotest.test_case "≡ valuation_of_rank (randomized)" `Quick
            test_odometer_equals_rank;
          Alcotest.test_case "wrap & range checks" `Quick
            test_odometer_wraps_and_rejects
        ] );
      ( "digits",
        [ Alcotest.test_case "≡ holds on §4 example" `Quick
            test_digits_section4;
          Alcotest.test_case "≡ holds on two-block workload" `Quick
            test_digits_two_block;
          Alcotest.test_case "≡ naive (randomized)" `Quick
            test_digits_randomized;
          Alcotest.test_case "guards" `Quick test_digits_guards
        ] );
      ( "dls",
        [ Alcotest.test_case "memoizes per key" `Quick test_dls_memoizes;
          Alcotest.test_case "cap evicts oldest" `Quick
            test_dls_cap_evicts_oldest;
          Alcotest.test_case "per-domain isolation" `Quick test_dls_per_domain;
          Alcotest.test_case "backs Support.domain_kernel" `Quick
            test_dls_backs_domain_kernel
        ] );
      ( "pool-queue",
        [ Alcotest.test_case "folds reuse workers" `Quick test_pool_queue_fold;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_queue_exception;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "nested folds" `Quick test_pool_nested_folds
        ] )
    ]
