(* Tests for the logic layer: formulas, evaluation, queries, fragments,
   UCQ normalization, and the parser. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module F = Logic.Formula
module Query = Logic.Query
module Eval = Logic.Eval
module Fragment = Logic.Fragment
module Ucq = Logic.Ucq
module Parser = Logic.Parser

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let formula_t = Alcotest.testable F.pp F.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Formula structure                                                    *)
(* ------------------------------------------------------------------ *)

let test_free_vars () =
  let f =
    F.And
      ( F.Atom ("R", [ F.var "x"; F.var "y" ]),
        F.Exists ("y", F.Atom ("S", [ F.var "y"; F.var "z" ])) )
  in
  check (Alcotest.list Alcotest.string) "free vars" [ "x"; "y"; "z" ]
    (F.free_vars f);
  check bool_t "not a sentence" false (F.is_sentence f);
  check bool_t "sentence" true (F.is_sentence (F.exists [ "x"; "y"; "z" ] f))

let test_constants_of_formula () =
  let f = F.And (F.Atom ("R", [ F.cst "a"; F.var "x" ]), F.Eq (F.var "x", F.cst "b")) in
  check int_t "two constants" 2 (List.length (F.constants f));
  check (Alcotest.list int_t) "no nulls" [] (F.nulls f);
  let g = F.Atom ("R", [ F.vl (Value.null 7); F.var "x" ]) in
  check (Alcotest.list int_t) "nulls" [ 7 ] (F.nulls g)

let test_subst () =
  let f = F.Exists ("y", F.Atom ("R", [ F.var "x"; F.var "y" ])) in
  let g = F.subst [ ("x", F.cst "a") ] f in
  check formula_t "simple subst"
    (F.Exists ("y", F.Atom ("R", [ F.cst "a"; F.var "y" ])))
    g;
  (* Capture avoidance: substituting y for x under a binder of y must
     rename the binder. *)
  let h = F.subst [ ("x", F.var "y") ] f in
  check bool_t "capture avoided" true
    (match h with
    | F.Exists (b, F.Atom ("R", [ F.Var v; F.Var b' ])) ->
        b <> "y" && v = "y" && b' = b
    | _ -> false);
  (* Bound variables shadow. *)
  let shadowed = F.Exists ("x", F.Atom ("R", [ F.var "x" ])) in
  check formula_t "shadowing" shadowed (F.subst [ ("x", F.cst "a") ] shadowed)

let test_instantiate () =
  let f = F.Atom ("R", [ F.var "x"; F.var "y" ]) in
  let t = Tuple.of_list [ Value.named "a"; Value.null 1 ] in
  check formula_t "instantiate"
    (F.Atom ("R", [ F.vl (Value.named "a"); F.vl (Value.null 1) ]))
    (F.instantiate [ "x"; "y" ] t f)

let test_well_formed () =
  let schema = Schema.make [ ("R", 2) ] in
  check bool_t "ok" true
    (Result.is_ok (F.well_formed schema (F.Atom ("R", [ F.var "x"; F.var "y" ]))));
  check bool_t "bad arity" true
    (Result.is_error (F.well_formed schema (F.Atom ("R", [ F.var "x" ]))));
  check bool_t "unknown relation" true
    (Result.is_error (F.well_formed schema (F.Atom ("S", [ F.var "x" ]))))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

let graph_schema = Schema.make [ ("E", 2) ]

let path_db () =
  (* c -> c' -> ⊥  (the example after Definition 3 in the paper) *)
  Instance.of_rows graph_schema
    [ ("E",
       [ [ Value.named "c"; Value.named "c'" ];
         [ Value.named "c'"; Value.null 0 ]
       ])
    ]

let test_eval_basic () =
  let d = path_db () in
  check bool_t "edge exists" true
    (Eval.sentence_holds d (F.Atom ("E", [ F.cst "c"; F.cst "c'" ])));
  check bool_t "no self loop" false
    (Eval.sentence_holds d
       (F.exists [ "x" ] (F.Atom ("E", [ F.var "x"; F.var "x" ]))));
  check bool_t "forall has outgoing is false" false
    (Eval.sentence_holds d
       (F.forall [ "x" ]
          (F.exists [ "y" ] (F.Atom ("E", [ F.var "x"; F.var "y" ])))))

let test_eval_distance2 () =
  (* φ(x) = ∃y E(c,y) ∧ E(y,x): on the incomplete db this is naive
     evaluation and must return {⊥} (paper's example). *)
  let d = path_db () in
  let q =
    Query.make [ "x" ]
      (F.exists [ "y" ]
         (F.And
            ( F.Atom ("E", [ F.cst "c"; F.var "y" ]),
              F.Atom ("E", [ F.var "y"; F.var "x" ]) )))
  in
  let expected = Relation.of_list 1 [ Tuple.of_list [ Value.null 0 ] ] in
  check relation_t "distance 2" expected (Eval.answers d q)

let test_eval_negation () =
  let d = path_db () in
  (* nodes with no outgoing edge: just ⊥ *)
  let q =
    Query.make [ "x" ]
      (F.Not (F.exists [ "y" ] (F.Atom ("E", [ F.var "x"; F.var "y" ]))))
  in
  let expected = Relation.of_list 1 [ Tuple.of_list [ Value.null 0 ] ] in
  check relation_t "sinks" expected (Eval.answers d q)

let test_eval_constants_outside_db () =
  (* A constant mentioned in the query but absent from the database
     participates in quantification but cannot be an answer. *)
  let d = path_db () in
  let q = Query.make [ "x" ] (F.Eq (F.var "x", F.cst "zzz")) in
  check relation_t "no invented answers" (Relation.empty 1) (Eval.answers d q);
  check bool_t "but quantifiable" true
    (Eval.sentence_holds d
       (F.exists [ "x" ] (F.Eq (F.var "x", F.cst "zzz"))))

let test_tuple_in_answer () =
  let d = path_db () in
  let q = Query.make [ "x"; "y" ] (F.Atom ("E", [ F.var "x"; F.var "y" ])) in
  check bool_t "present" true
    (Eval.tuple_in_answer d q (Tuple.of_list [ Value.named "c'"; Value.null 0 ]));
  check bool_t "absent" false
    (Eval.tuple_in_answer d q (Tuple.of_list [ Value.null 0; Value.named "c" ]))

(* ------------------------------------------------------------------ *)
(* Fragments                                                            *)
(* ------------------------------------------------------------------ *)

let test_fragments () =
  let cq =
    F.exists [ "y" ]
      (F.And (F.Atom ("R", [ F.var "x"; F.var "y" ]), F.Atom ("S", [ F.var "y" ])))
  in
  check bool_t "cq" true (Fragment.is_conjunctive cq);
  check bool_t "cq is ucq" true (Fragment.is_ucq cq);
  check bool_t "cq is positive" true (Fragment.is_positive cq);
  let ucq = F.Or (cq, F.Atom ("T", [ F.var "x" ])) in
  check bool_t "union not cq" false (Fragment.is_conjunctive ucq);
  check bool_t "ucq" true (Fragment.is_ucq ucq);
  let neg = F.Not cq in
  check bool_t "negation not ucq" false (Fragment.is_ucq neg);
  check bool_t "negation not positive" false (Fragment.is_positive neg);
  (* Pos∀G: ∀x (U(x) → R(x)) is in the fragment; with negation it is not. *)
  let guarded =
    F.Forall ("x", F.Implies (F.Atom ("U", [ F.var "x" ]), F.Atom ("R", [ F.var "x" ])))
  in
  check bool_t "guarded universal" true (Fragment.is_pos_forall_guard guarded);
  let bad =
    F.Forall
      ("x", F.Implies (F.Atom ("U", [ F.var "x" ]), F.Not (F.Atom ("R", [ F.var "x" ]))))
  in
  check bool_t "negation under guard rejected" false
    (Fragment.is_pos_forall_guard bad);
  let non_atom_guard =
    F.Forall ("x", F.Implies (F.Not (F.Atom ("U", [ F.var "x" ])), F.Atom ("R", [ F.var "x" ])))
  in
  check bool_t "non-atomic guard rejected" false
    (Fragment.is_pos_forall_guard non_atom_guard);
  (* A guard mentioning a variable that is not universally quantified at
     that point is NOT a Pos∀G guard (and the naive-evaluation theorem
     genuinely fails for such queries). *)
  let free_in_guard =
    F.Forall
      ( "y",
        F.Implies
          ( F.Atom ("S", [ F.var "x"; F.var "y" ]),
            F.Exists ("z", F.Atom ("R", [ F.var "x"; F.var "z" ])) ) )
  in
  check bool_t "free variable in guard rejected" false
    (Fragment.is_pos_forall_guard free_in_guard);
  let proper_guard =
    F.forall [ "y"; "z" ]
      (F.Implies
         (F.Atom ("S", [ F.var "y"; F.var "z" ]), F.Atom ("R", [ F.var "x"; F.var "y" ])))
  in
  check bool_t "fully quantified guard accepted" true
    (Fragment.is_pos_forall_guard proper_guard);
  check bool_t "plain forall allowed" true
    (Fragment.is_pos_forall_guard (F.Forall ("x", F.Atom ("U", [ F.var "x" ]))));
  check bool_t "quantifier free" true
    (Fragment.is_quantifier_free (F.And (F.True, F.Not F.False)))

(* Regression tests for the guard-shape corner cases of
   [is_pos_forall_guard] (audited for this release): the recognizer must
   stay conservative exactly where Corollary 3's proof needs it, and no
   stricter elsewhere. *)
let test_pos_forall_guard_audit () =
  (* Repeated guard variables: ∀x (S(x,x) → R(x)) — the guard atom does
     not list distinct fresh variables, so the guarded-fragment shape is
     violated; must be rejected. *)
  let repeated =
    F.Forall
      ( "x",
        F.Implies
          (F.Atom ("S", [ F.var "x"; F.var "x" ]), F.Atom ("R", [ F.var "x" ])) )
  in
  check bool_t "repeated guard variables rejected" false
    (Fragment.is_pos_forall_guard repeated);
  (* Guarded universal under a disjunction: Pos∀G is closed under ∨, so
     T(u) ∨ ∀x (U(x) → R(x,u)) is in the fragment. *)
  let under_or =
    F.Or
      ( F.Atom ("T", [ F.var "u" ]),
        F.Forall
          ( "x",
            F.Implies
              ( F.Atom ("U", [ F.var "x" ]),
                F.Atom ("R", [ F.var "x"; F.var "u" ]) ) ) )
  in
  check bool_t "guarded forall under disjunction accepted" true
    (Fragment.is_pos_forall_guard under_or);
  (* Guard covering a strict subset of the ∀-prefix: ∀x∀y (U(x) → R(x,y))
     is equivalent to ∀x (U(x) → ∀y R(x,y)) because universals commute,
     so the subset guard is sound and accepted. *)
  let subset_prefix =
    F.forall [ "x"; "y" ]
      (F.Implies (F.Atom ("U", [ F.var "x" ]), F.Atom ("R", [ F.var "x"; F.var "y" ])))
  in
  check bool_t "guard over subset of prefix accepted" true
    (Fragment.is_pos_forall_guard subset_prefix);
  (* Vacuous 0-ary guard: ∀x (P() → R(x)). Valuations never change 0-ary
     facts, so the guarded semantics degenerates soundly; accepted. *)
  let vacuous =
    F.Forall ("x", F.Implies (F.Atom ("P", []), F.Atom ("R", [ F.var "x" ])))
  in
  check bool_t "zero-ary guard accepted" true
    (Fragment.is_pos_forall_guard vacuous);
  (* Constants in the guard atom break the fresh-variables requirement. *)
  let const_guard =
    F.Forall
      ( "x",
        F.Implies
          ( F.Atom ("S", [ F.var "x"; F.cst "a" ]),
            F.Atom ("R", [ F.var "x" ]) ) )
  in
  check bool_t "constant in guard rejected" false
    (Fragment.is_pos_forall_guard const_guard)

let test_classify () =
  let cq =
    F.exists [ "y" ]
      (F.And (F.Atom ("R", [ F.var "x"; F.var "y" ]), F.Atom ("S", [ F.var "y" ])))
  in
  let ucq = F.Or (cq, F.Atom ("T", [ F.var "x" ])) in
  let guarded =
    F.Forall ("y", F.Implies (F.Atom ("U", [ F.var "y" ]), F.Atom ("R", [ F.var "x"; F.var "y" ])))
  in
  let fo = F.Not cq in
  let frag_t =
    Alcotest.testable
      (fun ppf f -> Format.pp_print_string ppf (Fragment.fragment_name f))
      ( = )
  in
  check frag_t "cq classified tightest" Fragment.Cq (Fragment.classify cq);
  check frag_t "ucq classified" Fragment.Ucq (Fragment.classify ucq);
  check frag_t "guarded classified" Fragment.PosForallG (Fragment.classify guarded);
  check frag_t "negation falls to FO" Fragment.Fo (Fragment.classify fo);
  (* The lattice is linear: CQ ⊆ UCQ ⊆ Pos∀G ⊆ FO. *)
  check bool_t "cq ≤ ucq" true (Fragment.leq Fragment.Cq Fragment.Ucq);
  check bool_t "ucq ≤ posforallg" true (Fragment.leq Fragment.Ucq Fragment.PosForallG);
  check bool_t "posforallg ≤ fo" true (Fragment.leq Fragment.PosForallG Fragment.Fo);
  check bool_t "fo ≰ cq" false (Fragment.leq Fragment.Fo Fragment.Cq);
  (* Naive evaluation is sound up to and including Pos∀G (Cor. 3). *)
  check bool_t "naive sound for ucq" true (Fragment.naive_eval_sound Fragment.Ucq);
  check bool_t "naive sound for posforallg" true
    (Fragment.naive_eval_sound Fragment.PosForallG);
  check bool_t "naive unsound for fo" false (Fragment.naive_eval_sound Fragment.Fo)

(* ------------------------------------------------------------------ *)
(* UCQ normalization                                                    *)
(* ------------------------------------------------------------------ *)

let test_ucq_normalization () =
  (* ∃x (A(x) ∨ B(x)) ∧ C(u)  normalizes to two disjuncts. *)
  let body =
    F.And
      ( F.Exists ("x", F.Or (F.Atom ("A", [ F.var "x" ]), F.Atom ("B", [ F.var "x" ]))),
        F.Atom ("C", [ F.var "u" ]) )
  in
  let q = Query.make [ "u" ] body in
  match Ucq.of_query q with
  | None -> Alcotest.fail "expected UCQ"
  | Some u ->
      check int_t "two disjuncts" 2 (List.length u.Ucq.disjuncts);
      check int_t "max atoms" 2 (Ucq.max_atoms u);
      (* Round trip: the normalized query is equivalent on instances. *)
      let schema = Schema.make [ ("A", 1); ("B", 1); ("C", 1) ] in
      let d =
        Instance.of_rows schema
          [ ("A", [ [ Value.named "a" ] ]); ("C", [ [ Value.named "u1" ] ]) ]
      in
      let q' = Ucq.to_query u in
      check relation_t "roundtrip evaluation" (Eval.answers d q) (Eval.answers d q')

let test_ucq_rejects_negation () =
  let q = Query.make [ "x" ] (F.Not (F.Atom ("A", [ F.var "x" ]))) in
  check bool_t "not a ucq" true (Ucq.of_query q = None)

let test_ucq_cq_holds () =
  let schema = Schema.make [ ("E", 2) ] in
  let d =
    Instance.of_rows schema
      [ ("E", [ [ Value.named "a"; Value.named "b" ]; [ Value.named "b"; Value.named "c" ] ]) ]
  in
  (* ∃y E(x,y) ∧ E(y,z): homomorphism search *)
  let c =
    { Ucq.exvars = [ "y" ];
      atoms = [ ("E", [ F.var "x"; F.var "y" ]); ("E", [ F.var "y"; F.var "z" ]) ]
    }
  in
  check bool_t "path a-c" true
    (Ucq.cq_holds d c [ ("x", Value.named "a"); ("z", Value.named "c") ]);
  check bool_t "no path c-a" false
    (Ucq.cq_holds d c [ ("x", Value.named "c"); ("z", Value.named "a") ])

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_formula () =
  let f = Parser.formula_exn "R(x, y) & !S(x, y)" in
  check formula_t "conj with negation"
    (F.And (F.Atom ("R", [ F.var "x"; F.var "y" ]), F.Not (F.Atom ("S", [ F.var "x"; F.var "y" ]))))
    f;
  let g = Parser.formula_exn "exists y . E('c', y) & E(y, x)" in
  check formula_t "existential"
    (F.Exists ("y", F.And (F.Atom ("E", [ F.cst "c"; F.var "y" ]), F.Atom ("E", [ F.var "y"; F.var "x" ]))))
    g;
  let h = Parser.formula_exn "forall x. U(x) -> R(x) | S(x)" in
  check bool_t "implication under forall" true
    (match h with F.Forall ("x", F.Implies (_, F.Or (_, _))) -> true | _ -> false);
  let eq = Parser.formula_exn "x != 'a'" in
  check formula_t "inequality" (F.neq (F.var "x") (F.cst "a")) eq;
  check bool_t "precedence: & over |" true
    (match Parser.formula_exn "A(x) | B(x) & C(x)" with
    | F.Or (_, F.And (_, _)) -> true
    | _ -> false)

let test_parse_query () =
  let q = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)" in
  check Alcotest.string "name" "Q" q.Query.name;
  check (Alcotest.list Alcotest.string) "head vars" [ "x"; "y" ] q.Query.free;
  let q2 = Parser.query_exn "R1(x, y)" in
  check (Alcotest.list Alcotest.string) "inferred vars" [ "x"; "y" ] q2.Query.free;
  let q3 = Parser.query_exn "exists x. U(x)" in
  check int_t "boolean" 0 (Query.arity q3);
  check bool_t "bad input is an error" true (Result.is_error (Parser.query "Q(x :="))

let test_parse_values_tuples () =
  check bool_t "null" true (Value.equal (Value.null 3) (Parser.value_exn "~3"));
  check bool_t "quoted" true
    (Value.equal (Value.named "hello world") (Parser.value_exn "'hello world'"));
  check bool_t "int literal" true
    (Value.equal (Value.named "42") (Parser.value_exn "42"));
  let t = Parser.tuple_exn "('c1', ~1)" in
  check bool_t "tuple" true
    (Tuple.equal (Tuple.of_list [ Value.named "c1"; Value.null 1 ]) t);
  check int_t "empty tuple" 0 (Tuple.arity (Parser.tuple_exn "()"))

let test_parse_schema_instance () =
  let schema = Parser.schema_exn "R1(customer, product); R2(customer, product)" in
  check int_t "arity" 2 (Schema.arity schema "R1");
  let d =
    Parser.instance_exn schema
      "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) }; R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"
  in
  check int_t "tuples" 6 (Instance.total_tuples d);
  check (Alcotest.list int_t) "nulls" [ 1; 2; 3 ] (Instance.nulls d);
  (* comments and whitespace *)
  let d2 =
    Parser.instance_exn schema
      "-- supplier 1\nR1 = { ('c1', ~1) }\n# supplier 2\nR2 = { }"
  in
  check int_t "with comments" 1 (Instance.total_tuples d2)

let test_parser_errors () =
  check bool_t "unterminated quote" true (Result.is_error (Parser.formula "R('a"));
  check bool_t "dangling operator" true (Result.is_error (Parser.formula "R(x) &"));
  check bool_t "unbalanced" true (Result.is_error (Parser.formula "(R(x)"));
  check bool_t "unknown char" true (Result.is_error (Parser.formula "R(x) $ S(x)"))

let test_formula_printing_roundtrip () =
  let samples =
    [ "R(x, y) & !S(x, y)";
      "exists x. exists y. R(x, y) | S(y, x)";
      "forall x. U(x) -> (R(x) & !S(x))";
      "x = y | x != 'a'";
      "true & false";
      "exists x. (A(x) | B(x)) & C(x)"
    ]
  in
  List.iter
    (fun s ->
      let f = Parser.formula_exn s in
      let printed = F.to_string f in
      let f' = Parser.formula_exn printed in
      check formula_t ("roundtrip: " ^ s) f f')
    samples

(* ------------------------------------------------------------------ *)
(* Edge cases                                                           *)
(* ------------------------------------------------------------------ *)

let test_formula_misc () =
  let f = Parser.formula_exn "exists x. R(x, x) & !S(x, 'a')" in
  check int_t "size" 5 (F.size f);
  (* map_values renames constants *)
  let renamed =
    F.map_values
      (function
        | Value.Const _ -> Value.named "b"
        | Value.Null _ as v -> v)
      f
  in
  check (Alcotest.list int_t) "renamed constants"
    [ Relational.Names.intern "b" ]
    (F.constants renamed);
  Alcotest.check_raises "instantiate arity"
    (Invalid_argument "Formula.instantiate: arity mismatch") (fun () ->
      ignore (F.instantiate [ "x" ] (Tuple.consts [ "a"; "b" ]) F.True))

let test_eval_empty_domain () =
  (* On an empty instance with no constants in the formula, quantifiers
     range over the empty domain. *)
  let schema = Schema.make [ ("R", 1) ] in
  let d = Instance.empty schema in
  check bool_t "forall over empty" true
    (Eval.sentence_holds d (Parser.formula_exn "forall x. R(x)"));
  check bool_t "exists over empty" false
    (Eval.sentence_holds d (Parser.formula_exn "exists x. R(x)"));
  (* a constant in the formula populates the domain *)
  check bool_t "constant enters domain" false
    (Eval.sentence_holds d (Parser.formula_exn "forall x. R(x) | x != 'c0'"))

let test_query_construction_errors () =
  check bool_t "duplicate head var" true
    (match Query.make [ "x"; "x" ] (F.Atom ("R", [ F.var "x"; F.var "x" ])) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_t "unbound variable" true
    (match Query.make [ "x" ] (F.Atom ("R", [ F.var "x"; F.var "y" ])) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_t "boolean rejects free vars" true
    (match Query.boolean (F.Atom ("R", [ F.var "x" ])) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* extra answer variables are allowed and range over the domain *)
  let q = Query.make [ "x"; "y" ] (F.Atom ("U", [ F.var "x" ])) in
  check int_t "extra variable arity" 2 (Query.arity q)

let test_parser_niceties () =
  (* comments inside input *)
  let f = Parser.formula_exn "R(x, y) -- trailing comment\n& S(y, x)" in
  check bool_t "comment skipped" true
    (match f with F.And (_, _) -> true | _ -> false);
  (* nullary query head *)
  let q = Parser.query_exn "Q() := exists x. R(x, x)" in
  check int_t "explicit boolean head" 0 (Query.arity q);
  (* deeply nested quantifiers parse and print *)
  let g =
    Parser.formula_exn
      "forall x. (exists y. R(x, y)) -> (exists z. S(z, x) & z != x)"
  in
  check bool_t "nested roundtrip" true
    (F.equal g (Parser.formula_exn (F.to_string g)))

let test_ucq_max_atoms_and_empty () =
  let q = Parser.query_exn "Q() := false" in
  (match Ucq.of_query q with
  | Some u ->
      check int_t "false has no disjuncts" 0 (List.length u.Ucq.disjuncts);
      check int_t "max atoms 0" 0 (Ucq.max_atoms u)
  | None -> Alcotest.fail "false is a UCQ");
  let q2 = Parser.query_exn "Q() := true" in
  match Ucq.of_query q2 with
  | Some u -> check int_t "true: one empty disjunct" 1 (List.length u.Ucq.disjuncts)
  | None -> Alcotest.fail "true is a UCQ"

let () =
  Alcotest.run "logic"
    [ ( "formula",
        [ Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "constants/nulls" `Quick test_constants_of_formula;
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "well-formedness" `Quick test_well_formed
        ] );
      ( "eval",
        [ Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "distance-2 example" `Quick test_eval_distance2;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "query constants" `Quick test_eval_constants_outside_db;
          Alcotest.test_case "tuple membership" `Quick test_tuple_in_answer
        ] );
      ( "fragments",
        [ Alcotest.test_case "recognition" `Quick test_fragments;
          Alcotest.test_case "guard audit" `Quick test_pos_forall_guard_audit;
          Alcotest.test_case "classification" `Quick test_classify
        ] );
      ( "ucq",
        [ Alcotest.test_case "normalization" `Quick test_ucq_normalization;
          Alcotest.test_case "rejects negation" `Quick test_ucq_rejects_negation;
          Alcotest.test_case "homomorphism search" `Quick test_ucq_cq_holds
        ] );
      ( "parser",
        [ Alcotest.test_case "formulas" `Quick test_parse_formula;
          Alcotest.test_case "queries" `Quick test_parse_query;
          Alcotest.test_case "values and tuples" `Quick test_parse_values_tuples;
          Alcotest.test_case "schema and instance" `Quick test_parse_schema_instance;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "printing roundtrip" `Quick
            test_formula_printing_roundtrip
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "formula misc" `Quick test_formula_misc;
          Alcotest.test_case "empty domains" `Quick test_eval_empty_domain;
          Alcotest.test_case "query construction" `Quick
            test_query_construction_errors;
          Alcotest.test_case "parser niceties" `Quick test_parser_niceties;
          Alcotest.test_case "ucq corner cases" `Quick test_ucq_max_atoms_and_empty
        ] )
    ]
