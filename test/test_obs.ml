(* Observability subsystem: counter atomicity under domains, trace
   JSONL well-formedness, the strict validator's rejections, and the
   report renderers. *)

module M = Obs.Metrics
module T = Obs.Trace

let with_metrics f =
  M.reset ();
  M.enable ();
  Fun.protect ~finally:(fun () -> M.disable ()) f

(* --- counters ----------------------------------------------------- *)

let test_counters_disabled () =
  M.reset ();
  M.disable ();
  M.incr M.valuations_evaluated;
  M.add M.chase_steps 7;
  Alcotest.(check int) "incr is a no-op when disabled" 0
    (M.value M.valuations_evaluated);
  Alcotest.(check int) "add is a no-op when disabled" 0 (M.value M.chase_steps)

let test_counters_basic () =
  with_metrics (fun () ->
      M.incr M.valuations_evaluated;
      M.incr M.valuations_evaluated;
      M.add M.pool_tasks_queued 5;
      Alcotest.(check int) "incr twice" 2 (M.value M.valuations_evaluated);
      Alcotest.(check int) "add 5" 5 (M.value M.pool_tasks_queued);
      let snap = M.snapshot () in
      Alcotest.(check (option int))
        "snapshot sees the counter" (Some 2)
        (List.assoc_opt "valuations_evaluated" snap.M.counters));
  M.reset ();
  Alcotest.(check int) "reset zeroes" 0 (M.value M.valuations_evaluated)

let test_counters_atomic_across_domains () =
  let domains = 4 and per_domain = 25_000 in
  with_metrics (fun () ->
      let spawned =
        Array.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  M.incr M.valuations_evaluated
                done))
      in
      Array.iter Domain.join spawned;
      Alcotest.(check int) "no lost increments" (domains * per_domain)
        (M.value M.valuations_evaluated))

(* --- span histograms ---------------------------------------------- *)

let test_histogram () =
  with_metrics (fun () ->
      List.iter (M.observe_span "h") [ 1; 2; 3; 1024; 1_000_000 ];
      M.observe_span "h" (-5);
      (* negative durations dropped *)
      let snap = M.snapshot () in
      match List.assoc_opt "h" snap.M.spans with
      | None -> Alcotest.fail "histogram missing from snapshot"
      | Some st ->
          Alcotest.(check int) "count" 5 st.M.count;
          Alcotest.(check int) "total" (1 + 2 + 3 + 1024 + 1_000_000)
            st.M.total_ns;
          Alcotest.(check int) "max" 1_000_000 st.M.max_ns;
          Alcotest.(check int) "buckets sum to count" st.M.count
            (Array.fold_left ( + ) 0 st.M.buckets))

(* --- tracing ------------------------------------------------------ *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_trace_well_formed () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_metrics (fun () ->
          T.enable_file path;
          Fun.protect ~finally:T.close (fun () ->
              (* Nested spans, attribute escaping, spans on other
                 domains, and an error span — everything the engine's
                 instrumentation can produce. *)
              T.span "outer" (fun () ->
                  T.span "inner" ~attrs:[ ("k", "16"); ("q", {|say "hi"|}) ]
                    (fun () -> ());
                  let d =
                    Domain.spawn (fun () -> T.span "worker" (fun () -> 42))
                  in
                  ignore (Domain.join d));
              (try T.span "boom" (fun () -> failwith "expected") with
              | Failure _ -> ())));
      (match T.validate_file path with
      | Ok n -> Alcotest.(check int) "4 completed spans" 4 n
      | Error msg -> Alcotest.fail ("trace should validate: " ^ msg));
      (* The error span carries the exception in its end attributes. *)
      let has_error_attr =
        List.exists (fun l -> contains_sub l "a_error") (read_lines path)
      in
      Alcotest.(check bool) "error attribute present" true has_error_attr)

let test_trace_disabled_is_passthrough () =
  T.close ();
  Alcotest.(check bool) "tracing off" false (T.enabled ());
  Alcotest.(check int) "span runs its thunk" 7 (T.span "x" (fun () -> 7));
  Alcotest.(check int) "span_begin returns 0" 0 (T.span_begin "x")

let test_validator_rejections () =
  let bad msg lines =
    match T.validate_lines lines with
    | Ok _ -> Alcotest.fail ("validator accepted " ^ msg)
    | Error _ -> ()
  in
  let b id name t =
    Printf.sprintf {|{"ev":"b","id":%d,"name":"%s","t":%d,"dom":0}|} id name t
  in
  let e id name t =
    Printf.sprintf {|{"ev":"e","id":%d,"name":"%s","t":%d,"dom":0}|} id name t
  in
  (match T.validate_lines [ b 1 "s" 10; e 1 "s" 20 ] with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 span, got %d" n
  | Error msg -> Alcotest.fail ("well-formed pair rejected: " ^ msg));
  Alcotest.(check bool) "empty trace is fine" true
    (T.validate_lines [] = Ok 0);
  bad "truncated JSON" [ {|{"ev":"b","id":1,"name":"s"|} ];
  bad "trailing garbage" [ b 1 "s" 10 ^ "}" ];
  bad "non-JSON line" [ "hello" ];
  bad "unclosed span" [ b 1 "s" 10 ];
  bad "end without begin" [ e 1 "s" 10 ];
  bad "name mismatch" [ b 1 "s" 10; e 1 "other" 20 ];
  bad "duplicate begin" [ b 1 "s" 10; b 1 "s" 11 ];
  bad "time going backwards" [ b 1 "s" 20; e 1 "s" 10 ];
  bad "duplicate key" [ {|{"ev":"b","ev":"b","id":1,"name":"s","t":1,"dom":0}|} ];
  bad "unknown event" [ {|{"ev":"x","id":1,"name":"s","t":1,"dom":0}|} ];
  bad "missing field" [ {|{"ev":"b","id":1,"t":1,"dom":0}|} ]

(* --- shared JSON escaping ----------------------------------------- *)

let test_json_escape () =
  let esc = Obs.Json.escape in
  Alcotest.(check string) "plain text passes through" "hello" (esc "hello");
  Alcotest.(check string) "quotes" {|say \"hi\"|} (esc {|say "hi"|});
  Alcotest.(check string) "backslashes" {|a\\b\\\\c|} (esc {|a\b\\c|});
  Alcotest.(check string) "newline" {|line1\nline2|} (esc "line1\nline2");
  Alcotest.(check string) "tab and CR become \\u escapes" "a\\u0009b\\u000dc"
    (esc "a\tb\rc");
  Alcotest.(check string) "NUL and ESC" "\\u0000\\u001b" (esc "\000\027");
  (* Non-ASCII bytes pass through unchanged: UTF-8 payloads (µ, ⊥, …)
     stay readable in the emitted JSON. *)
  Alcotest.(check string) "UTF-8 multibyte passes through" "µ^k ⊥"
    (esc "µ^k ⊥");
  Alcotest.(check string) "high byte passes through" "\xff\x80"
    (esc "\xff\x80");
  Alcotest.(check string) "empty" "" (esc "");
  (* add_escaped is the same encoder, Buffer-shaped. *)
  let b = Buffer.create 16 in
  Obs.Json.add_escaped b "x\"\n";
  Alcotest.(check string) "add_escaped agrees with escape" (esc "x\"\n")
    (Buffer.contents b)

(* --- report ------------------------------------------------------- *)

let test_report_renderers () =
  with_metrics (fun () ->
      M.incr M.cache_hits;
      M.observe_span "sp" 1000;
      let snap = M.snapshot () in
      let text = Obs.Report.to_text snap in
      Alcotest.(check bool) "text names the counter" true
        (contains_sub text "cache_hits");
      let json = Obs.Report.to_json snap in
      Alcotest.(check bool) "json has counters object" true
        (String.length json > 2 && String.sub json 0 13 = {|{"counters": |});
      Alcotest.(check bool) "json is one line" true
        (not (String.contains json '\n')))

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "disabled is free" `Quick test_counters_disabled;
          Alcotest.test_case "incr/add/snapshot/reset" `Quick
            test_counters_basic;
          Alcotest.test_case "atomic across domains" `Quick
            test_counters_atomic_across_domains;
          Alcotest.test_case "span histogram" `Quick test_histogram
        ] );
      ( "trace",
        [ Alcotest.test_case "well-formed JSONL" `Quick test_trace_well_formed;
          Alcotest.test_case "disabled passthrough" `Quick
            test_trace_disabled_is_passthrough;
          Alcotest.test_case "validator rejections" `Quick
            test_validator_rejections
        ] );
      ( "json",
        [ Alcotest.test_case "shared escaper" `Quick test_json_escape ] );
      ( "report",
        [ Alcotest.test_case "renderers" `Quick test_report_renderers ] )
    ]
