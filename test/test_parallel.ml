(* Tests for the parallel measure engine: the Exec.Pool work pool, the
   evaluation cache, and the guarantee that parallel/cached runs are
   bit-identical to sequential ones.

   Determinism rests on two facts, both exercised here:
   - Exec.Pool combines chunk partials in chunk order, and the chunk
     partition is a pure function of (n, jobs);
   - every accumulator involved (Bigint addition, Rat addition, Poly
     addition, relation union) is exact — no floating point — hence
     associative and commutative, so any chunking yields the same
     value. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Instance = Relational.Instance
module Query = Logic.Query
module Parser = Logic.Parser
module Valuation = Incomplete.Valuation
module Enumerate = Incomplete.Enumerate
module Support = Incomplete.Support
module Certain = Incomplete.Certain
module Constructions = Zeroone.Constructions
module Conditional = Zeroone.Conditional
module B = Arith.Bigint
module R = Arith.Rat

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let bigint_t = Alcotest.testable B.pp B.equal
let rat_t = Alcotest.testable R.pp R.equal
let relation_t = Alcotest.testable Relation.pp Relation.equal

let jobs_grid = [ 1; 2; 4 ]

let intro_schema =
  Parser.schema_exn "R1(customer, product); R2(customer, product)"

let intro_db () =
  Parser.instance_exn intro_schema
    "R1 = { ('c1', ~1), ('c2', ~1), ('c2', ~2) };
     R2 = { ('c1', ~2), ('c2', ~1), (~3, ~1) }"

let intro_query () = Parser.query_exn "Q(x, y) := R1(x, y) & !R2(x, y)"

(* ------------------------------------------------------------------ *)
(* Exec.Pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_pool_fold_range () =
  (* Sum of [0,n) for sizes around the chunking boundaries, forced to
     actually spawn domains with ~min_work:1. *)
  List.iter
    (fun n ->
      let expect = n * (n - 1) / 2 in
      List.iter
        (fun jobs ->
          let got =
            Exec.Pool.fold_range ~jobs ~min_work:1 ~n
              ~chunk:(fun lo hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do s := !s + i done;
                !s)
              ~combine:( + ) 0
          in
          check int_t (Printf.sprintf "sum n=%d jobs=%d" n jobs) expect got)
        (jobs_grid @ [ 7; 100 ]))
    [ 0; 1; 2; 3; 7; 64; 1000 ]

let test_pool_chunk_order () =
  (* combine is applied in chunk order even when combine is not
     commutative: collecting chunk bounds must give a partition of
     [0,n) in increasing order. *)
  List.iter
    (fun jobs ->
      let pieces =
        Exec.Pool.fold_range ~jobs ~min_work:1 ~n:100
          ~chunk:(fun lo hi -> [ (lo, hi) ])
          ~combine:( @ ) []
      in
      let rec contiguous from = function
        | [] -> from = 100
        | (lo, hi) :: rest -> lo = from && hi >= lo && contiguous hi rest
      in
      check bool_t
        (Printf.sprintf "chunks partition [0,100) in order, jobs=%d" jobs)
        true (contiguous 0 pieces))
    [ 1; 2; 3; 4; 9 ]

let test_pool_exception () =
  (* A raising chunk must not wedge the pool: the exception propagates
     after every domain is joined. *)
  Alcotest.check_raises "chunk exception propagates" (Failure "boom")
    (fun () ->
      ignore
        (Exec.Pool.fold_range ~jobs:4 ~min_work:1 ~n:64
           ~chunk:(fun lo _ -> if lo > 0 then failwith "boom" else 0)
           ~combine:( + ) 0))

let test_with_pool () =
  let seen = ref None in
  let r =
    Exec.Pool.with_pool (fun pool ->
        seen := Some pool;
        Exec.Pool.fold_range ~pool ~jobs:4 ~min_work:1 ~n:100
          ~chunk:(fun lo hi -> hi - lo)
          ~combine:( + ) 0)
  in
  check int_t "body result returned" 100 r;
  match !seen with
  | None -> Alcotest.fail "body never ran"
  | Some pool ->
      check bool_t "pool shut down after return" true (Exec.Pool.is_stopped pool)

let test_with_pool_raising_body () =
  (* The scoped pool must be torn down even when the body raises —
     otherwise every failed request in the server would leak domains. *)
  let seen = ref None in
  Alcotest.check_raises "body exception propagates" (Failure "body")
    (fun () ->
      Exec.Pool.with_pool (fun pool ->
          seen := Some pool;
          failwith "body"));
  match !seen with
  | None -> Alcotest.fail "body never ran"
  | Some pool ->
      check bool_t "pool shut down after raise" true
        (Exec.Pool.is_stopped pool)

let test_guard_cancels () =
  (* A raising guard aborts the fold: the exception propagates, the
     pool survives for the next fold. This is the deadline mechanism of
     the query service. *)
  let budget = Atomic.make 5 in
  Alcotest.check_raises "guard exception propagates" Exit (fun () ->
      ignore
        (Exec.Pool.fold_range ~jobs:4 ~min_work:1 ~n:(1 lsl 20)
           ~guard:(fun () ->
             if Atomic.fetch_and_add budget (-1) <= 0 then raise Exit)
           ~chunk:(fun lo hi -> hi - lo)
           ~combine:( + ) 0));
  check int_t "pool still folds after a cancelled run" 64
    (Exec.Pool.fold_range ~jobs:4 ~min_work:1 ~n:64
       ~chunk:(fun lo hi -> hi - lo)
       ~combine:( + ) 0)

let test_guard_identical () =
  (* A pass-through guard refines the chunk partition (bounded check
     granularity) but must not change the answer: combine order stays
     chunk order and the accumulators are exact. *)
  let n = (1 lsl 17) + 13 in
  let expect =
    Exec.Pool.fold_range ~jobs:1 ~n
      ~chunk:(fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do s := !s + (i * i) done;
        !s)
      ~combine:( + ) 0
  in
  List.iter
    (fun jobs ->
      let calls = Atomic.make 0 in
      let got =
        Exec.Pool.fold_range ~jobs ~n
          ~guard:(fun () -> Atomic.incr calls)
          ~chunk:(fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do s := !s + (i * i) done;
            !s)
          ~combine:( + ) 0
      in
      check int_t (Printf.sprintf "guarded sum jobs=%d" jobs) expect got;
      check bool_t
        (Printf.sprintf "guard saw every chunk (jobs=%d)" jobs)
        true
        (Atomic.get calls >= 2))
    jobs_grid

let test_cache_basics () =
  let cache = Exec.Cache.create () in
  let calls = ref 0 in
  let f k =
    Exec.Cache.find_or_add cache k (fun () -> incr calls; k * 10)
  in
  check int_t "miss computes" 10 (f 1);
  check int_t "hit returns" 10 (f 1);
  check int_t "distinct key computes" 20 (f 2);
  check int_t "compute called twice" 2 !calls;
  let s = Exec.Cache.stats cache in
  check int_t "hits" 1 s.Exec.Cache.hits;
  check int_t "misses" 2 s.Exec.Cache.misses;
  check int_t "entries" 2 s.Exec.Cache.entries;
  check int_t "no cap, no evictions" 0 s.Exec.Cache.evictions

let test_cache_eviction () =
  let cache = Exec.Cache.create ~max_entries:4 () in
  let f k = Exec.Cache.find_or_add cache k (fun () -> k * 10) in
  for k = 1 to 10 do
    ignore (f k)
  done;
  let s = Exec.Cache.stats cache in
  check int_t "entries capped" 4 s.Exec.Cache.entries;
  check int_t "evictions = inserts - cap" 6 s.Exec.Cache.evictions;
  check int_t "all ten were misses" 10 s.Exec.Cache.misses;
  (* FIFO: the oldest keys are gone, the newest survive. *)
  let calls = ref 0 in
  let g k = Exec.Cache.find_or_add cache k (fun () -> incr calls; k * 10) in
  check int_t "evicted key recomputes" 10 (g 1);
  check int_t "recompute really ran" 1 !calls;
  check int_t "resident key still hits" 100 (g 10);
  check int_t "hit did not recompute" 1 !calls;
  Alcotest.check_raises "negative cap rejected"
    (Invalid_argument "Cache.create: negative max_entries") (fun () ->
      ignore (Exec.Cache.create ~max_entries:(-1) () : (int, int) Exec.Cache.t))

let test_cache_concurrent_hammer () =
  (* Domains race find_or_add over a key space twice the cap: whatever
     the interleaving, the accounting must stay consistent — every call
     is a hit or a miss, the table never exceeds the cap, and only
     stored values can be evicted (a double-computed race inserts
     once, so entries + evictions never exceeds misses). *)
  let cap = 32 and keyspace = 64 and domains = 4 and per_domain = 2_000 in
  let cache = Exec.Cache.create ~max_entries:cap () in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to per_domain do
      let k = Random.State.int st keyspace in
      let v = Exec.Cache.find_or_add cache k (fun () -> k * 10) in
      assert (v = k * 10)
    done
  in
  let spawned = Array.init domains (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join spawned;
  let s = Exec.Cache.stats cache in
  check int_t "every call is a hit or a miss" (domains * per_domain)
    (s.Exec.Cache.hits + s.Exec.Cache.misses);
  check bool_t "entries within cap" true (s.Exec.Cache.entries <= cap);
  check bool_t "entries + evictions <= misses" true
    (s.Exec.Cache.entries + s.Exec.Cache.evictions <= s.Exec.Cache.misses);
  check bool_t "something was evicted" true (s.Exec.Cache.evictions > 0)

let test_pool_empty_fold_after_shutdown () =
  (* n = 0 must return init without touching the pool at all — even a
     shut-down pool, whose workers are gone. *)
  let pool = Exec.Pool.create ~workers:1 () in
  Exec.Pool.shutdown pool;
  let got =
    Exec.Pool.fold_range ~pool ~jobs:4 ~min_work:1 ~n:0
      ~chunk:(fun _ _ -> Alcotest.fail "chunk ran on an empty range")
      ~combine:( + ) 42
  in
  check int_t "empty fold returns init" 42 got;
  check int_t "empty fold_list returns init" 7
    (Exec.Pool.fold_list ~pool ~jobs:4 ~min_work:1
       ~chunk:(fun _ -> Alcotest.fail "chunk ran on an empty list")
       ~combine:( + ) 7 [])

(* ------------------------------------------------------------------ *)
(* Rank-based enumeration                                               *)
(* ------------------------------------------------------------------ *)

let test_rank_enumeration () =
  let nulls = [ 2; 5; 9 ] and k = 4 in
  (match Enumerate.space_size ~nulls ~k with
  | Some n -> check int_t "space size" 64 n
  | None -> Alcotest.fail "space_size overflowed on 4^3");
  let by_fold =
    List.rev
      (Enumerate.fold_valuations ~nulls ~k (fun acc v -> v :: acc) [])
  in
  let by_rank = List.init 64 (Enumerate.valuation_of_rank ~nulls ~k) in
  check bool_t "rank order = fold order" true
    (List.for_all2 Valuation.equal by_fold by_rank);
  let by_range =
    List.rev
      (Enumerate.fold_valuations_range ~nulls ~k ~lo:0 ~hi:64
         (fun acc v -> v :: acc)
         [])
  in
  check bool_t "range fold = full fold" true
    (List.for_all2 Valuation.equal by_fold by_range)

let test_space_size_edges () =
  check bool_t "0 nulls" true (Enumerate.space_size ~nulls:[] ~k:5 = Some 1);
  check bool_t "k=0, no nulls" true
    (Enumerate.space_size ~nulls:[] ~k:0 = Some 1);
  check bool_t "k=0, nulls" true
    (Enumerate.space_size ~nulls:[ 1 ] ~k:0 = Some 0);
  check bool_t "overflow detected" true
    (Enumerate.space_size ~nulls:(List.init 80 Fun.id) ~k:10 = None)

(* ------------------------------------------------------------------ *)
(* Parallel = sequential, exactly                                       *)
(* ------------------------------------------------------------------ *)

let test_mu_k_parallel_agrees () =
  (* k = 8 on 3 nulls gives 512 valuations: exactly the spawn
     threshold, so jobs > 1 really runs on several domains. *)
  let d = intro_db () and q = intro_query () in
  let t = Parser.tuple_exn "('c1', ~1)" in
  let seq = Support.mu_k ~jobs:1 d q t ~k:8 in
  List.iter
    (fun jobs ->
      check rat_t
        (Printf.sprintf "mu_k jobs=%d" jobs)
        seq
        (Support.mu_k ~jobs d q t ~k:8))
    jobs_grid;
  let cache = Support.create_cache () in
  check rat_t "mu_k cached" seq (Support.mu_k ~jobs:2 ~cache d q t ~k:8);
  check rat_t "mu_k cache warm" seq (Support.mu_k ~jobs:1 ~cache d q t ~k:8)

let test_supp_count_parallel_agrees () =
  let d = intro_db () and q = intro_query () in
  let t = Parser.tuple_exn "('c2', ~2)" in
  let seq = Support.supp_count ~jobs:1 d q t ~k:9 in
  List.iter
    (fun jobs ->
      check bigint_t
        (Printf.sprintf "supp_count jobs=%d" jobs)
        seq
        (Support.supp_count ~jobs d q t ~k:9))
    jobs_grid

let test_certain_answers_parallel_agrees () =
  let d = intro_db () and q = intro_query () in
  let seq = Certain.certain_answers ~jobs:1 d q in
  let poss = Certain.possible_answers ~jobs:1 d q in
  List.iter
    (fun jobs ->
      let cache = Support.create_cache () in
      check relation_t
        (Printf.sprintf "certain_answers jobs=%d" jobs)
        seq
        (Certain.certain_answers ~jobs ~cache d q);
      check relation_t
        (Printf.sprintf "possible_answers jobs=%d" jobs)
        poss
        (Certain.possible_answers ~jobs ~cache d q))
    jobs_grid

let test_section4_parallel_agrees () =
  (* The worked example of §4: µ(Q|Σ,D) is 1/3 on (1,⊥) and 2/3 on
     (2,⊥); both the symbolic conditional measure and the brute-force
     µ^k must give the same values for every jobs/cache setting. *)
  let e = Constructions.section4_example () in
  let sigma = e.Constructions.s4_sigma in
  let d = e.Constructions.s4_instance and q = e.Constructions.s4_query in
  List.iter
    (fun jobs ->
      let cache = Support.create_cache () in
      check rat_t
        (Printf.sprintf "§4 µ=1/3 jobs=%d" jobs)
        (R.of_ints 1 3)
        (Conditional.mu_cond ~jobs ~cache ~sigma d q
           e.Constructions.s4_tuple_third);
      check rat_t
        (Printf.sprintf "§4 µ=2/3 jobs=%d" jobs)
        (R.of_ints 2 3)
        (Conditional.mu_cond ~jobs ~cache ~sigma d q
           e.Constructions.s4_tuple_two_thirds);
      (* 600 > 512 valuations: the brute-force count spawns domains. *)
      check rat_t
        (Printf.sprintf "§4 µ^k brute jobs=%d" jobs)
        (Conditional.mu_cond_k ~jobs:1 ~sigma d q
           e.Constructions.s4_tuple_third ~k:600)
        (Conditional.mu_cond_k ~jobs ~cache ~sigma d q
           e.Constructions.s4_tuple_third ~k:600))
    jobs_grid

(* Randomized: parallel and cached runs agree exactly with sequential
   ones on arbitrary small instances. *)
let prop_parallel_equals_sequential =
  let schema = Schema.make [ ("R", 2); ("S", 2) ] in
  let value_gen =
    QCheck.map
      (fun i ->
        if i >= 0 then Value.null (i mod 3)
        else Value.named ("p" ^ string_of_int (-i mod 3)))
      (QCheck.int_range (-6) 5)
  in
  let inst_gen =
    QCheck.map
      (fun (r_rows, s_rows) ->
        Instance.of_rows schema
          [ ("R", List.map (fun (a, b) -> [ a; b ]) r_rows);
            ("S", List.map (fun (a, b) -> [ a; b ]) s_rows)
          ])
      (QCheck.pair
         (QCheck.list_of_size (QCheck.Gen.int_range 0 3)
            (QCheck.pair value_gen value_gen))
         (QCheck.list_of_size (QCheck.Gen.int_range 0 2)
            (QCheck.pair value_gen value_gen)))
  in
  let queries =
    [ Parser.query_exn "Q() := exists x. exists y. R(x, y) & !S(x, y)";
      Parser.query_exn "Q() := forall x. forall y. R(x, y) -> S(x, y)"
    ]
  in
  QCheck.Test.make ~name:"parallel µ^k and □(Q,D) = sequential" ~count:30
    inst_gen (fun d ->
      List.for_all
        (fun q ->
          let cache = Support.create_cache () in
          let seq = Support.mu_k_boolean ~jobs:1 d q ~k:9 in
          List.for_all
            (fun jobs ->
              R.equal seq (Support.mu_k_boolean ~jobs ~cache d q ~k:9))
            jobs_grid
          &&
          let qa = Parser.query_exn "Q(x) := exists y. R(x, y) & !S(y, x)" in
          let seq_rel = Certain.certain_answers ~jobs:1 d qa in
          List.for_all
            (fun jobs ->
              Relation.equal seq_rel (Certain.certain_answers ~jobs ~cache d qa))
            jobs_grid)
        queries)

(* ------------------------------------------------------------------ *)
(* Order-independence of exact accumulation                             *)
(* ------------------------------------------------------------------ *)

(* The chunked fold combines partial sums in chunk order, but the
   determinism guarantee ("parallel ≡ sequential, bit for bit") needs
   more: the partial sums must be reassociable. Rat addition is exact
   rational arithmetic — unlike floats, where (a+b)+c ≠ a+(b+c) — so
   any regrouping and reordering of the same addends gives the same
   canonical value. *)
let prop_rat_sum_order_independent =
  let rat_gen =
    QCheck.map
      (fun (p, q) -> R.of_ints p (if q = 0 then 1 else abs q))
      (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range 1 97))
  in
  QCheck.Test.make ~name:"Rat: Σ is order/association independent" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) rat_gen)
    (fun xs ->
      let sum l = List.fold_left R.add R.zero l in
      let forward = sum xs in
      let backward = sum (List.rev xs) in
      (* simulate an arbitrary chunking: fold each half, then combine *)
      let n = List.length xs / 2 in
      let chunked =
        R.add
          (sum (List.filteri (fun i _ -> i < n) xs))
          (sum (List.filteri (fun i _ -> i >= n) xs))
      in
      R.equal forward backward && R.equal forward chunked)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_parallel_equals_sequential; prop_rat_sum_order_independent ]

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "fold_range sums" `Quick test_pool_fold_range;
          Alcotest.test_case "chunk order" `Quick test_pool_chunk_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "empty fold after shutdown" `Quick
            test_pool_empty_fold_after_shutdown;
          Alcotest.test_case "with_pool scoping" `Quick test_with_pool;
          Alcotest.test_case "with_pool raising body" `Quick
            test_with_pool_raising_body;
          Alcotest.test_case "guard cancels a fold" `Quick test_guard_cancels;
          Alcotest.test_case "guard keeps results identical" `Quick
            test_guard_identical;
          Alcotest.test_case "cache basics" `Quick test_cache_basics;
          Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
          Alcotest.test_case "cache concurrent hammer" `Quick
            test_cache_concurrent_hammer
        ] );
      ( "rank-enumeration",
        [ Alcotest.test_case "rank order = fold order" `Quick
            test_rank_enumeration;
          Alcotest.test_case "space_size edges" `Quick test_space_size_edges
        ] );
      ( "parallel-vs-sequential",
        [ Alcotest.test_case "µ^k (intro example)" `Quick
            test_mu_k_parallel_agrees;
          Alcotest.test_case "supp_count" `Quick
            test_supp_count_parallel_agrees;
          Alcotest.test_case "certain/possible answers" `Quick
            test_certain_answers_parallel_agrees;
          Alcotest.test_case "§4 conditional measure" `Quick
            test_section4_parallel_agrees
        ] );
      ("properties", qcheck_cases)
    ]
