(* The sharded serving tier: the consistent-hash ring's membership
   algebra (determinism, affected-arc-only remaps, re-admission
   restoring the original mapping bit for bit), the client's capped
   backoff schedule, and a live three-shard cluster behind a router —
   byte-identity with the sequential engine, health-gated membership,
   replicated update forwarding, and kill/restart failover where every
   response is either the correct bytes or a typed shard_unavailable. *)

module W = Server.Wire
module Session = Server.Session
module Service = Server.Service
module Daemon = Server.Daemon
module Client = Server.Client
module Ring = Shard.Ring
module Router = Shard.Router

let check = Alcotest.check

let keys n = List.init n (Printf.sprintf "session-key-%d")
let all_up _ = true

(* --- ring --------------------------------------------------------- *)

let test_ring_deterministic () =
  let names = [| "a"; "b"; "c"; "d" |] in
  let r1 = Ring.create names and r2 = Ring.create names in
  List.iter
    (fun k ->
      check Alcotest.(option int) k
        (Ring.lookup r1 ~up:all_up k)
        (Ring.lookup r2 ~up:all_up k);
      check
        Alcotest.(list int)
        (k ^ " successors")
        (Ring.successors r1 ~up:all_up ~n:3 k)
        (Ring.successors r2 ~up:all_up ~n:3 k))
    (keys 500);
  check Alcotest.int "hash64 is stable within a process" (Ring.hash64 "x")
    (Ring.hash64 "x");
  check Alcotest.bool "hash64 lands on the 62-bit circle" true
    (Ring.hash64 "x" >= 0)

let test_ring_ejection_remaps_only_owned_arcs () =
  let r = Ring.create [| "a"; "b"; "c"; "d"; "e" |] in
  let before =
    List.map (fun k -> (k, Option.get (Ring.lookup r ~up:all_up k))) (keys 2000)
  in
  let victim = 2 in
  let up i = i <> victim in
  let moved = ref 0 in
  List.iter
    (fun (k, owner) ->
      let now = Option.get (Ring.lookup r ~up k) in
      if owner <> victim then
        check Alcotest.int ("unaffected key kept its shard: " ^ k) owner now
      else begin
        incr moved;
        check Alcotest.bool "orphaned key moved off the victim" true
          (now <> victim)
      end)
    before;
  check Alcotest.bool "the victim owned some keys" true (!moved > 0);
  (* Re-admission restores the original assignment exactly. *)
  List.iter
    (fun (k, owner) ->
      check Alcotest.int ("re-admission restored " ^ k) owner
        (Option.get (Ring.lookup r ~up:all_up k)))
    before

let test_ring_distribution () =
  let n = 4 in
  let r = Ring.create (Array.init n (Printf.sprintf "shard%d")) in
  let counts = Array.make n 0 in
  List.iter
    (fun k ->
      let i = Option.get (Ring.lookup r ~up:all_up k) in
      counts.(i) <- counts.(i) + 1)
    (keys 8000);
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "shard %d holds a sane share (%d/8000)" i c)
        true
        (c > 8000 / (n * 4) && c < 8000 / 2))
    counts

let test_ring_successors_distinct () =
  let r = Ring.create [| "a"; "b"; "c"; "d" |] in
  List.iter
    (fun k ->
      let s = Ring.successors r ~up:all_up ~n:3 k in
      check Alcotest.int "three distinct replicas" 3
        (List.length (List.sort_uniq compare s));
      (* Asking for more shards than are live yields what exists. *)
      let s2 = Ring.successors r ~up:(fun i -> i < 2) ~n:3 k in
      check Alcotest.bool "short ring yields fewer" true
        (List.length s2 = 2
        && List.for_all (fun i -> i < 2) s2))
    (keys 200)

(* --- client backoff ----------------------------------------------- *)

let test_retry_delays () =
  let got = Client.retry_delays ~delay:0.1 ~backoff:2.0 ~cap:2.0 7 in
  let expect = [ 0.1; 0.2; 0.4; 0.8; 1.6; 2.0; 2.0 ] in
  List.iter2
    (fun e g -> check (Alcotest.float 1e-9) "capped geometric sleep" e g)
    expect got;
  check Alcotest.(list (float 1e-9)) "zero attempts" []
    (Client.retry_delays 0);
  check Alcotest.bool "every delay is capped" true
    (List.for_all (fun d -> d <= 0.5) (Client.retry_delays ~cap:0.5 20))

let test_parse_addr () =
  (match Router.parse_addr "localhost:9042" with
  | Ok (Daemon.Tcp ("localhost", 9042)) -> ()
  | _ -> Alcotest.fail "host:port should parse as TCP");
  (match Router.parse_addr "/tmp/shard.sock" with
  | Ok (Daemon.Unix_sock "/tmp/shard.sock") -> ()
  | _ -> Alcotest.fail "a path is a unix socket");
  match Router.parse_addr "./dir:with/colon.sock" with
  | Ok (Daemon.Unix_sock _) -> ()
  | _ -> Alcotest.fail "a slash forces unix-socket parsing"

(* --- live cluster -------------------------------------------------- *)

let temp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "certainty-router-test-%s-%d.sock" tag (Unix.getpid ()))

let shard_config sock =
  { (Daemon.default_config (Daemon.Unix_sock sock)) with
    Daemon.service_threads = 2;
    max_sessions = 16
  }

(* Three shards and a router with a fast prober, torn down in reverse. *)
let with_cluster ?(replicas = 2) tag f =
  let socks = List.init 3 (fun i -> temp_sock (Printf.sprintf "%s%d" tag i)) in
  List.iter (fun s -> if Sys.file_exists s then Sys.remove s) socks;
  let daemons = List.map (fun s -> Daemon.start (shard_config s)) socks in
  let rsock = temp_sock (tag ^ "r") in
  if Sys.file_exists rsock then Sys.remove rsock;
  let cfg =
    { (Router.default_config ~addr:(Daemon.Unix_sock rsock)
         ~shards:(List.map (fun s -> Daemon.Unix_sock s) socks))
      with
      Router.replicas;
      probe_interval_s = 0.05;
      fail_threshold = 2;
      drain_grace_s = 5.0
    }
  in
  let router = Router.start cfg in
  let tbl = Hashtbl.create 8 in
  List.iter2 (fun s d -> Hashtbl.replace tbl s (ref (Some d))) socks daemons;
  let stop_shard sock =
    match Hashtbl.find_opt tbl sock with
    | Some ({ contents = Some d } as slot) ->
        slot := None;
        Daemon.drain d;
        Daemon.wait d
    | _ -> ()
  in
  let start_shard sock =
    match Hashtbl.find_opt tbl sock with
    | Some ({ contents = None } as slot) ->
        slot := Some (Daemon.start (shard_config sock))
    | _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Router.drain router;
      Router.wait router;
      List.iter stop_shard socks)
    (fun () -> f ~router ~raddr:(Daemon.Unix_sock rsock) ~stop_shard ~start_shard)

let request_exn c line =
  match Client.request c line with
  | Some resp -> resp
  | None -> Alcotest.fail "router hung up"

let schema = "R(a); S(a)"
let db tag = Printf.sprintf "R = { ('%s1'), ('%s2') }; S = { (~1) }" tag tag

let certain_line ~id tag =
  W.obj
    [ ("id", W.S id); ("op", W.S "certain"); ("schema", W.S schema);
      ("db", W.S (db tag)); ("query", W.S "Q(x) := R(x) & !S(x)")
    ]

let update_line ~id tag =
  W.obj
    [ ("id", W.S id); ("op", W.S "update"); ("schema", W.S schema);
      ("db", W.S (db tag)); ("action", W.S "insert"); ("relation", W.S "R");
      ("tuple", W.S (Printf.sprintf "('%s3')" tag))
    ]

let reference lines =
  let sessions = Session.create ~max_sessions:16 () in
  List.map
    (fun line ->
      match W.parse_request line with
      | Error msg -> Alcotest.failf "reference line does not parse: %s" msg
      | Ok r -> (
          match Service.handle ~sessions ~jobs:1 r with
          | Ok payload -> W.ok_line ~id:r.W.id ~op:r.W.op payload
          | Error (err, msg) -> W.error_line ~id:r.W.id err msg))
    lines

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Update responses embed a process-global generation stamp; blank it
   before comparing across processes (same trick as bench --router). *)
let blank_generation resp =
  let pat = "\"generation\":" in
  let np = String.length pat and nh = String.length resp in
  let b = Buffer.create nh in
  let i = ref 0 in
  while !i < nh do
    if !i + np <= nh && String.sub resp !i np = pat then begin
      Buffer.add_string b pat;
      Buffer.add_char b '_';
      i := !i + np;
      while
        !i < nh && (match resp.[!i] with '0' .. '9' -> true | _ -> false)
      do
        incr i
      done
    end
    else begin
      Buffer.add_char b resp.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_router_byte_identity () =
  with_cluster "id" @@ fun ~router:_ ~raddr ~stop_shard:_ ~start_shard:_ ->
  let lines =
    List.concat_map
      (fun tag ->
        [ certain_line ~id:(tag ^ "q") tag ])
      [ "a"; "b"; "c"; "d"; "e"; "f" ]
  in
  let expected = reference lines in
  Client.with_conn raddr @@ fun c ->
  List.iter2
    (fun line want ->
      check Alcotest.string "router response identical to sequential engine"
        want (request_exn c line))
    lines expected

let test_router_health () =
  with_cluster "h" @@ fun ~router:_ ~raddr ~stop_shard:_ ~start_shard:_ ->
  Client.with_conn raddr @@ fun c ->
  let resp = request_exn c {|{"id":"rh","op":"health"}|} in
  List.iter
    (fun needle ->
      check Alcotest.bool ("health reports " ^ needle) true
        (contains resp needle))
    [ {|"id":"rh"|}; {|"ok":true|}; {|"tier":"router"|}; {|"shards":3|};
      {|"shards_up":3|}; {|"replicas":2|}
    ]

let test_router_update_forwarding () =
  with_cluster "u" @@ fun ~router ~raddr ~stop_shard:_ ~start_shard:_ ->
  let tag = "w" in
  let q ~id = certain_line ~id tag in
  let expected =
    reference [ q ~id:"q1"; update_line ~id:"u1" tag; q ~id:"q2" ]
  in
  let before, upd, after =
    match expected with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  (Client.with_conn raddr @@ fun c ->
   check Alcotest.string "pre-update read" before (request_exn c (q ~id:"q1"));
   check Alcotest.string "update accepted (modulo generation stamp)"
     (blank_generation upd)
     (blank_generation (request_exn c (update_line ~id:"u1" tag)));
   check Alcotest.string "post-update read" after (request_exn c (q ~id:"q2")));
  (* Every replica of the session answers the post-update query with
     the exact same bytes: the forwarded update really applied. *)
  let replicas = Router.replica_set router ~schema ~db:(db tag) in
  check Alcotest.int "session spans two replicas" 2 (List.length replicas);
  List.iter
    (fun name ->
      Client.with_conn (Daemon.Unix_sock name) @@ fun c ->
      check Alcotest.string
        ("replica " ^ name ^ " verdict-identical after forwarding") after
        (request_exn c (q ~id:"q2")))
    replicas

let wait_until ?(timeout = 10.0) label pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" label
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let test_router_failover () =
  with_cluster "f" @@ fun ~router ~raddr ~stop_shard ~start_shard ->
  let tag = "k" in
  let line = certain_line ~id:"fq" tag in
  let expected = List.hd (reference [ line ]) in
  (* Warm the session, then kill its primary. *)
  (Client.with_conn raddr @@ fun c ->
   check Alcotest.string "pre-kill" expected (request_exn c line));
  let victim =
    match Router.primary_of router ~schema ~db:(db tag) with
    | Some v -> v
    | None -> Alcotest.fail "session has no primary"
  in
  stop_shard victim;
  (* Every response during the outage is the correct bytes or a typed
     shard_unavailable — never a hang, never a wrong answer. *)
  let identical = ref 0 and unavailable = ref 0 in
  for _ = 1 to 40 do
    Client.with_conn raddr @@ fun c ->
    let resp = request_exn c line in
    if String.equal resp expected then incr identical
    else if contains resp {|"error":"shard_unavailable"|} then incr unavailable
    else Alcotest.failf "wrong bytes during failover: %s" resp
  done;
  wait_until "prober ejects the dead shard" (fun () ->
      not (List.mem victim (Router.live_shards router)));
  (* Post-ejection the replica serves the arc: identical again. *)
  (Client.with_conn raddr @@ fun c ->
   check Alcotest.string "replica serves after ejection" expected
     (request_exn c line));
  (* Restart: the prober re-admits and byte-identical service resumes. *)
  start_shard victim;
  wait_until "prober re-admits the restarted shard" (fun () ->
      List.mem victim (Router.live_shards router));
  Client.with_conn raddr @@ fun c ->
  check Alcotest.string "byte-identical service after restart" expected
    (request_exn c line);
  check Alcotest.bool "the outage produced some answered requests" true
    (!identical + !unavailable = 40)

let () =
  Alcotest.run "router"
    [ ( "ring",
        [ Alcotest.test_case "deterministic across builds" `Quick
            test_ring_deterministic;
          Alcotest.test_case "ejection remaps only the owned arcs" `Quick
            test_ring_ejection_remaps_only_owned_arcs;
          Alcotest.test_case "keys spread over the shards" `Quick
            test_ring_distribution;
          Alcotest.test_case "successors are distinct live shards" `Quick
            test_ring_successors_distinct
        ] );
      ( "client",
        [ Alcotest.test_case "capped geometric backoff schedule" `Quick
            test_retry_delays;
          Alcotest.test_case "shard address parsing" `Quick test_parse_addr
        ] );
      ( "router",
        [ Alcotest.test_case "byte-identity with the sequential engine" `Quick
            test_router_byte_identity;
          Alcotest.test_case "router-answered health" `Quick test_router_health;
          Alcotest.test_case "update forwards to every replica" `Quick
            test_router_update_forwarding;
          Alcotest.test_case "failover: correct bytes or typed error" `Quick
            test_router_failover
        ] )
    ]
