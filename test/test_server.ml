(* The query service: wire-protocol parsing, the session store, the
   request handlers (gated on identity with the direct engine calls),
   deadline propagation, and an end-to-end exercise of a live daemon
   over a Unix socket — admission control, parse-error survival,
   health, and graceful drain. *)

module W = Server.Wire
module Session = Server.Session
module Service = Server.Service
module Daemon = Server.Daemon
module Client = Server.Client

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- wire: requests ----------------------------------------------- *)

let parse_ok line =
  match W.parse_request line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "expected %s to parse, got: %s" line msg

let parse_err line =
  match W.parse_request line with
  | Ok _ -> Alcotest.failf "expected %s to be rejected" line
  | Error msg -> msg

let test_parse_good () =
  let r = parse_ok {|{"op":"health"}|} in
  check Alcotest.string "op" "health" r.W.op;
  check Alcotest.(option string) "no id" None r.W.id;
  let r =
    parse_ok {|  { "id" : "r1" , "op" : "certain" , "deadline_ms" : 250 }  |}
  in
  check Alcotest.(option string) "id echoed" (Some "r1") r.W.id;
  check Alcotest.(option int) "int field" (Some 250)
    (W.int_field r "deadline_ms");
  (* Lenient cross-coercion between the two value forms. *)
  check Alcotest.(option string) "int read as string" (Some "250")
    (W.str_field r "deadline_ms");
  let r = parse_ok {|{"op":"certain","k":"42"}|} in
  check Alcotest.(option int) "digit string read as int" (Some 42)
    (W.int_field r "k");
  check Alcotest.(option int) "absent field" None (W.int_field r "nope")

let test_parse_escapes () =
  let r = parse_ok {|{"op":"certain","query":"Q() := \"a\\b\"\n\t"}|} in
  check Alcotest.(option string) "standard escapes decoded"
    (Some "Q() := \"a\\b\"\n\t")
    (W.str_field r "query");
  let r = parse_ok {|{"op":"x","s":"µA⊥"}|} in
  check Alcotest.(option string) "\\u decoded to UTF-8" (Some "µA⊥")
    (W.str_field r "s")

let test_parse_bad () =
  let rejects label line = ignore (parse_err line); ignore label in
  rejects "empty" "";
  rejects "not an object" {|"health"|};
  rejects "truncated" {|{"op":"health"|};
  rejects "missing op" {|{"id":"r1"}|};
  rejects "nested object" {|{"op":"x","v":{"a":1}}|};
  rejects "array value" {|{"op":"x","v":[1]}|};
  rejects "boolean value" {|{"op":"x","v":true}|};
  rejects "float value" {|{"op":"x","v":1.5}|};
  rejects "bad escape" {|{"op":"x","v":"\q"}|};
  rejects "lone surrogate" {|{"op":"x","v":"\ud800"}|};
  rejects "raw control byte" "{\"op\":\"x\",\"v\":\"a\tb\"}";
  (* Positions in diagnostics and the two strictness rules the daemon
     counts on: duplicates and trailing bytes. *)
  check Alcotest.bool "duplicate key named" true
    (contains (parse_err {|{"op":"x","op":"y"}|}) "duplicate");
  check Alcotest.bool "trailing bytes named" true
    (contains (parse_err {|{"op":"x"} extra|}) "trailing");
  check Alcotest.bool "byte position reported" true
    (contains (parse_err {|{oops|}) "byte")

let test_wire_responses () =
  check Alcotest.string "ok line"
    {|{"id":"r1","ok":true,"op":"health","n":3,"b":false,"raw":[1]}|}
    (W.ok_line ~id:(Some "r1") ~op:"health"
       [ ("n", W.I 3); ("b", W.B false); ("raw", W.Raw "[1]") ]);
  check Alcotest.string "error line, no id"
    {|{"ok":false,"error":"overloaded","message":"queue full"}|}
    (W.error_line ~id:None W.Overloaded "queue full");
  (* Hostile content is escaped with the shared Obs.Json encoder:
     quotes, backslashes, newlines, and control bytes all come out as
     standard JSON escapes, one line per response. *)
  check Alcotest.string "hostile content escaped"
    {|{"id":"a\"b\n","ok":true,"op":"x","s":"\\\u0009"}|}
    (W.ok_line ~id:(Some "a\"b\n") ~op:"x" [ ("s", W.S "\\\t") ])

(* --- session store ------------------------------------------------ *)

let schema_a = "R(a,b); S(a,b)"
let db_a = "R = { ('c1', ~1), ('c2', 'v') }; S = { ('c1', 'v') }"

let test_session_sharing_and_eviction () =
  let s = Session.create ~max_sessions:2 () in
  let e1 = Result.get_ok (Session.get s ~schema:schema_a ~db:db_a) in
  let e1' = Result.get_ok (Session.get s ~schema:schema_a ~db:db_a) in
  check Alcotest.bool "same entry shared" true (e1 == e1');
  check Alcotest.int "one session" 1 (Session.count s);
  let db2 = "R = { ('c9', ~7) }; S = { }" in
  let db3 = "R = { }; S = { ('c8', 'w') }" in
  ignore (Result.get_ok (Session.get s ~schema:schema_a ~db:db2));
  check Alcotest.int "two sessions" 2 (Session.count s);
  ignore (Result.get_ok (Session.get s ~schema:schema_a ~db:db3));
  check Alcotest.int "capped at two" 2 (Session.count s);
  (* The first pair was the least recently used, so it was evicted:
     reloading it is a fresh entry, not the one we held. *)
  let e1'' = Result.get_ok (Session.get s ~schema:schema_a ~db:db_a) in
  check Alcotest.bool "first session was evicted" false (e1 == e1'');
  match Session.get s ~schema:"R(" ~db:db_a with
  | Ok _ -> Alcotest.fail "bad schema text accepted"
  | Error _ -> ()

(* --- service handlers --------------------------------------------- *)

let run_service ?guard line =
  let sessions = Session.create () in
  Service.handle ~sessions ~jobs:1 ?guard (parse_ok line)

let expect_ok = function
  | Ok payload -> payload
  | Error (err, msg) ->
      Alcotest.failf "expected success, got %s: %s" (W.error_code err) msg

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (W.error_code expected)
  | Error (err, msg) ->
      check Alcotest.string "typed error" (W.error_code expected)
        (W.error_code err);
      msg

let payload_str payload k =
  match List.assoc_opt k payload with
  | Some (W.S s) -> s
  | Some (W.I n) -> string_of_int n
  | _ -> Alcotest.failf "payload field %s missing or non-scalar" k

let certain_line =
  W.obj
    [ ("op", W.S "certain"); ("schema", W.S schema_a); ("db", W.S db_a);
      ("query", W.S "Q(x,y) := R(x,y) & !S(x,y)")
    ]

(* The endpoint must agree exactly with the sequential engine run on
   the same parsed inputs — the same identity [bench --serve] gates on
   at scale. *)
let test_service_certain_identity () =
  let payload = expect_ok (run_service certain_line) in
  let sch = Result.get_ok (Logic.Parser.schema schema_a) in
  let inst = Result.get_ok (Logic.Parser.instance sch db_a) in
  let q = Logic.Parser.query_exn "Q(x,y) := R(x,y) & !S(x,y)" in
  let expected = Incomplete.Certain.certain_answers inst q in
  let rel_string r =
    String.concat "; "
      (List.map Relational.Tuple.to_string (Relational.Relation.to_list r))
  in
  check Alcotest.string "certain identical to engine" (rel_string expected)
    (payload_str payload "certain");
  check Alcotest.string "certain count"
    (string_of_int (Relational.Relation.cardinal expected))
    (payload_str payload "certain_count")

let test_service_measure () =
  let line =
    W.obj
      [ ("op", W.S "measure"); ("schema", W.S schema_a); ("db", W.S db_a);
        ("query", W.S "Q(x,y) := R(x,y)"); ("tuple", W.S "('c1', ~1)");
        ("ks", W.S "2,3")
      ]
  in
  let payload = expect_ok (run_service line) in
  check Alcotest.string "verdict is the 0-1 limit" "almost certainly true"
    (payload_str payload "verdict");
  check Alcotest.string "mu" "1" (payload_str payload "mu");
  check Alcotest.string "exact series" "2=1;3=1" (payload_str payload "series")

let test_service_bad_requests () =
  let msg =
    expect_err W.Bad_request
      (run_service (W.obj [ ("op", W.S "certain"); ("schema", W.S schema_a) ]))
  in
  check Alcotest.bool "names the missing field" true (contains msg "db");
  ignore
    (expect_err W.Unsupported_op (run_service (W.obj [ ("op", W.S "frob") ])));
  (* The analysis gate: a non-generic query (names a constant) is
     refused with the stable diagnostic code, never evaluated. *)
  let msg =
    expect_err W.Analysis_error
      (run_service
         (W.obj
            [ ("op", W.S "certain"); ("schema", W.S schema_a);
              ("db", W.S db_a); ("query", W.S "Q(x) := R(x, 'c1')")
            ]))
  in
  check Alcotest.bool "carries the ANL code" true (contains msg "ANL")

let test_service_deadline () =
  (* A guard that trips immediately: the sweep must abort with the
     typed error, whatever progress it had made. *)
  let msg =
    expect_err W.Deadline_exceeded
      (run_service ~guard:(fun () -> raise Service.Deadline) certain_line)
  in
  check Alcotest.string "fixed message" "deadline exceeded" msg;
  (* And a guard that never trips changes nothing. *)
  let p1 = expect_ok (run_service certain_line) in
  let p2 = expect_ok (run_service ~guard:(fun () -> ()) certain_line) in
  check Alcotest.bool "guard presence is invisible in the result" true
    (p1 = p2)

(* The update op, end to end at the service layer: a session mutated
   in place must answer exactly like a fresh session loaded from the
   updated database text — and the original (schema, db) pair keeps
   addressing the mutated state. *)
let test_service_update () =
  let sessions = Session.create () in
  let handle line = Service.handle ~sessions ~jobs:1 (parse_ok line) in
  let certain_for db =
    W.obj
      [ ("op", W.S "certain"); ("schema", W.S schema_a); ("db", W.S db);
        ("query", W.S "Q(x,y) := R(x,y) & !S(x,y)")
      ]
  in
  let update_line fields =
    W.obj
      ([ ("op", W.S "update"); ("schema", W.S schema_a); ("db", W.S db_a) ]
      @ List.map (fun (k, v) -> (k, W.S v)) fields)
  in
  let before = expect_ok (handle (certain_for db_a)) in
  (* block R('c2','v') by inserting it into S *)
  let up =
    expect_ok
      (handle
         (update_line
            [ ("action", "insert"); ("relation", "S");
              ("tuple", "('c2', 'v')")
            ]))
  in
  check Alcotest.string "applied echoed" "insert" (payload_str up "applied");
  check Alcotest.string "new cardinality" "2" (payload_str up "cardinality");
  let after = expect_ok (handle (certain_for db_a)) in
  check Alcotest.bool "update changed the certain answers" false
    (before = after);
  (* bit-identity with a rebuilt session on the updated text *)
  let rebuilt = Session.create () in
  let db_updated = "R = { ('c1', ~1), ('c2', 'v') }; S = { ('c1', 'v'), ('c2', 'v') }" in
  let expected =
    expect_ok
      (Service.handle ~sessions:rebuilt ~jobs:1 (parse_ok (certain_for db_updated)))
  in
  check Alcotest.bool "mutated session = rebuilt session" true
    (after = expected);
  (* deleting the tuple again restores the original answers exactly *)
  ignore
    (expect_ok
       (handle
          (update_line
             [ ("action", "delete"); ("relation", "S");
               ("tuple", "('c2', 'v')")
             ])));
  let restored = expect_ok (handle (certain_for db_a)) in
  check Alcotest.bool "delete restored the original answers" true
    (before = restored)

let test_service_update_errors () =
  let sessions = Session.create () in
  let handle line = Service.handle ~sessions ~jobs:1 (parse_ok line) in
  let line fields =
    W.obj
      ([ ("op", W.S "update"); ("schema", W.S schema_a); ("db", W.S db_a) ]
      @ List.map (fun (k, v) -> (k, W.S v)) fields)
  in
  let expect_bad label fields needle =
    let msg = expect_err W.Bad_request (handle (line fields)) in
    check Alcotest.bool label true (contains msg needle)
  in
  expect_bad "missing action"
    [ ("relation", "R"); ("tuple", "('c1', ~1)") ]
    "action";
  expect_bad "unknown action"
    [ ("action", "upsert"); ("relation", "R"); ("tuple", "('c1', ~1)") ]
    "upsert";
  expect_bad "unknown relation"
    [ ("action", "insert"); ("relation", "T"); ("tuple", "('c1', ~1)") ]
    "unknown relation";
  expect_bad "arity mismatch"
    [ ("action", "insert"); ("relation", "R"); ("tuple", "('c1')") ]
    "arity";
  expect_bad "deleting an absent tuple"
    [ ("action", "delete"); ("relation", "R"); ("tuple", "('c9', 'z')") ]
    "not in";
  expect_bad "inserting a duplicate"
    [ ("action", "insert"); ("relation", "R"); ("tuple", "('c2', 'v')") ]
    "already";
  expect_bad "unparseable tuple"
    [ ("action", "insert"); ("relation", "R"); ("tuple", "(oops") ]
    "tuple";
  (* the failed updates left the session byte-identical *)
  let fresh = Session.create () in
  let certain =
    W.obj
      [ ("op", W.S "certain"); ("schema", W.S schema_a); ("db", W.S db_a);
        ("query", W.S "Q(x,y) := R(x,y)")
      ]
  in
  check Alcotest.bool "session unchanged by refused updates" true
    (expect_ok (handle certain)
    = expect_ok (Service.handle ~sessions:fresh ~jobs:1 (parse_ok certain)))

(* --- daemon end-to-end -------------------------------------------- *)

let temp_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "certainty-test-%s-%d.sock" tag (Unix.getpid ()))

let with_daemon ?(config = fun c -> c) tag f =
  let sock = temp_sock tag in
  if Sys.file_exists sock then Sys.remove sock;
  let t = Daemon.start (config (Daemon.default_config (Daemon.Unix_sock sock))) in
  Fun.protect
    ~finally:(fun () ->
      Daemon.drain t;
      Daemon.wait t)
    (fun () -> f (Daemon.Unix_sock sock))

let request_exn c line =
  match Client.request c line with
  | Some resp -> resp
  | None -> Alcotest.fail "server hung up"

let test_daemon_end_to_end () =
  with_daemon "e2e" @@ fun addr ->
  Client.with_conn addr @@ fun c ->
  (* Health answers inline. *)
  let h = request_exn c (W.obj [ ("op", W.S "health"); ("id", W.S "h1") ]) in
  check Alcotest.bool "health ok" true (contains h {|"ok":true|});
  check Alcotest.bool "health echoes id" true (contains h {|"id":"h1"|});
  check Alcotest.bool "health reports serving" true
    (contains h {|"status":"serving"|});
  (* A real evaluation matches the sequential engine byte-for-byte. *)
  let sessions = Session.create () in
  let r = parse_ok certain_line in
  let expected =
    match Service.handle ~sessions ~jobs:1 r with
    | Ok payload -> W.ok_line ~id:r.W.id ~op:r.W.op payload
    | Error (err, msg) -> W.error_line ~id:r.W.id err msg
  in
  check Alcotest.string "daemon response identical to sequential engine"
    expected
    (request_exn c certain_line);
  (* A malformed line gets a typed parse_error and the connection
     survives to serve the next request. *)
  let bad = request_exn c "{oops" in
  check Alcotest.bool "parse error typed" true
    (contains bad {|"error":"parse_error"|});
  check Alcotest.bool "connection survives a parse error" true
    (contains (request_exn c (W.obj [ ("op", W.S "health") ])) {|"ok":true|})

let test_daemon_overload () =
  let config c = { c with Daemon.service_threads = 1; max_queue = 0 } in
  with_daemon ~config "sat" @@ fun addr ->
  (* max_queue = 0: the queue admits nothing, so every evaluating
     request is shed with the typed response... *)
  let before = Obs.Metrics.value Obs.Metrics.serve_overloaded in
  Client.with_conn addr @@ fun c ->
  let resp = request_exn c certain_line in
  check Alcotest.bool "overloaded" true (contains resp {|"error":"overloaded"|});
  (* ...the counter records the shed... *)
  check Alcotest.bool "serve_overloaded counter bumped" true
    (Obs.Metrics.value Obs.Metrics.serve_overloaded > before);
  (* ...and the server stays responsive: health is answered inline,
     off-queue. *)
  check Alcotest.bool "health still served" true
    (contains (request_exn c (W.obj [ ("op", W.S "health") ])) {|"ok":true|})

let test_daemon_deadline () =
  let config c = { c with Daemon.deadline_ms = Some 1 } in
  with_daemon ~config "dl" @@ fun addr ->
  let before = Obs.Metrics.value Obs.Metrics.serve_deadline_exceeded in
  Client.with_conn addr @@ fun c ->
  (* 60^4 = 12 960 000 valuations: cannot finish in 1ms; the guard
     trips at a chunk boundary and the typed error comes back. *)
  let slow =
    W.obj
      [ ("op", W.S "measure"); ("schema", W.S "U(a,b,c,d)");
        ("db", W.S "U = { (~1, ~2, ~3, ~4) }");
        ("query", W.S "Q() := exists x. U(x, x, x, x)"); ("ks", W.S "60")
      ]
  in
  let resp = request_exn c slow in
  check Alcotest.bool "deadline exceeded" true
    (contains resp {|"error":"deadline_exceeded"|});
  check Alcotest.bool "counter bumped" true
    (Obs.Metrics.value Obs.Metrics.serve_deadline_exceeded > before);
  (* A per-request deadline_ms overrides the server default upward:
     the same connection can still run a real query to completion. *)
  let ok_line =
    W.obj
      [ ("op", W.S "certain"); ("schema", W.S schema_a); ("db", W.S db_a);
        ("query", W.S "Q(x,y) := R(x,y) & !S(x,y)"); ("deadline_ms", W.I 60_000)
      ]
  in
  check Alcotest.bool "override lets the request finish" true
    (contains (request_exn c ok_line) {|"ok":true|})

let test_daemon_pipelined_order () =
  with_daemon "pipe" @@ fun addr ->
  Client.with_conn addr @@ fun c ->
  (* A queued evaluation followed immediately by an inline-answerable
     health, written without reading in between: the health result is
     ready first (the reader answers it while the evaluation sits with
     a worker), but the wire must deliver responses in request
     order. *)
  Client.send_line c
    (W.obj
       [ ("op", W.S "certain"); ("id", W.S "p1"); ("schema", W.S schema_a);
         ("db", W.S db_a); ("query", W.S "Q(x,y) := R(x,y) & !S(x,y)")
       ]);
  Client.send_line c (W.obj [ ("op", W.S "health"); ("id", W.S "p2") ]);
  let recv () =
    match Client.recv_line c with
    | Some l -> l
    | None -> Alcotest.fail "server hung up mid-pipeline"
  in
  let r1 = recv () in
  let r2 = recv () in
  check Alcotest.bool "first response answers the first request" true
    (contains r1 {|"id":"p1"|} && contains r1 {|"op":"certain"|});
  check Alcotest.bool "second response answers the second request" true
    (contains r2 {|"id":"p2"|} && contains r2 {|"op":"health"|})

let test_daemon_rejects_nonpositive_deadline () =
  (* A client must not be able to cancel the operator's budget cap by
     sending deadline_ms <= 0 ("no deadline"). *)
  let config c = { c with Daemon.deadline_ms = Some 1 } in
  with_daemon ~config "dl0" @@ fun addr ->
  Client.with_conn addr @@ fun c ->
  List.iter
    (fun ms ->
      let line =
        W.obj
          [ ("op", W.S "certain"); ("schema", W.S schema_a); ("db", W.S db_a);
            ("query", W.S "Q(x,y) := R(x,y)"); ("deadline_ms", W.I ms)
          ]
      in
      let resp = request_exn c line in
      check Alcotest.bool "typed bad_request" true
        (contains resp {|"error":"bad_request"|});
      check Alcotest.bool "names the field" true (contains resp "deadline_ms"))
    [ 0; -1 ]

let test_daemon_caps_line_length () =
  with_daemon "cap" @@ fun addr ->
  Client.with_conn addr @@ fun c ->
  (* One line just past the 1 MiB cap: a typed parse_error, then the
     connection is closed (mid-line there is nothing to resync to). *)
  Client.send_line c (String.make ((1 lsl 20) + 16) 'x');
  (match Client.recv_line c with
  | Some resp ->
      check Alcotest.bool "typed parse_error" true
        (contains resp {|"error":"parse_error"|});
      check Alcotest.bool "says the line was too long" true
        (contains resp "exceeds")
  | None -> Alcotest.fail "no response to the over-long line");
  match Client.recv_line c with
  | None -> ()
  | Some l -> Alcotest.failf "connection should be closed, got %s" l

let test_resolve_ipv4 () =
  check Alcotest.string "literal address passes through" "127.0.0.1"
    (Unix.string_of_inet_addr (Daemon.resolve_ipv4 "127.0.0.1"));
  match Daemon.resolve_ipv4 "definitely.not.a.host.invalid" with
  | _ -> Alcotest.fail "bogus host resolved"
  | exception Failure msg ->
      check Alcotest.bool "diagnostic names the host" true
        (contains msg "definitely.not.a.host.invalid")

let test_daemon_drain () =
  let sock = temp_sock "drain" in
  if Sys.file_exists sock then Sys.remove sock;
  let t = Daemon.start (Daemon.default_config (Daemon.Unix_sock sock)) in
  let addr = Daemon.Unix_sock sock in
  let c = Client.connect addr in
  check Alcotest.bool "serving before drain" true
    (contains (request_exn c (W.obj [ ("op", W.S "health") ])) "serving");
  Daemon.drain t;
  Daemon.drain t;
  (* idempotent *)
  Daemon.wait t;
  check Alcotest.bool "socket path unlinked" false (Sys.file_exists sock);
  (* The old connection was shut down; a new connect is refused. *)
  (match Client.recv_line c with
  | None -> ()
  | Some l -> Alcotest.failf "expected EOF after drain, got %s" l);
  Client.close c;
  match Client.connect addr with
  | exception Unix.Unix_error _ -> ()
  | c2 ->
      Client.close c2;
      Alcotest.fail "connect after drain should fail"

let () =
  Obs.Metrics.enable ();
  Alcotest.run "server"
    [ ( "wire",
        [ Alcotest.test_case "parses well-formed requests" `Quick
            test_parse_good;
          Alcotest.test_case "decodes escapes" `Quick test_parse_escapes;
          Alcotest.test_case "rejects malformed requests" `Quick test_parse_bad;
          Alcotest.test_case "emits parseable responses" `Quick
            test_wire_responses
        ] );
      ( "session",
        [ Alcotest.test_case "sharing and LRU eviction" `Quick
            test_session_sharing_and_eviction
        ] );
      ( "service",
        [ Alcotest.test_case "certain identical to engine" `Quick
            test_service_certain_identity;
          Alcotest.test_case "measure verdict and series" `Quick
            test_service_measure;
          Alcotest.test_case "typed bad requests" `Quick
            test_service_bad_requests;
          Alcotest.test_case "deadline guard" `Quick test_service_deadline;
          Alcotest.test_case "update mutates the session in place" `Quick
            test_service_update;
          Alcotest.test_case "update validation" `Quick
            test_service_update_errors
        ] );
      ( "daemon",
        [ Alcotest.test_case "end to end over a unix socket" `Quick
            test_daemon_end_to_end;
          Alcotest.test_case "admission control sheds load" `Quick
            test_daemon_overload;
          Alcotest.test_case "deadlines trip mid-sweep" `Quick
            test_daemon_deadline;
          Alcotest.test_case "pipelined responses keep request order" `Quick
            test_daemon_pipelined_order;
          Alcotest.test_case "non-positive deadline_ms is refused" `Quick
            test_daemon_rejects_nonpositive_deadline;
          Alcotest.test_case "request lines are length-capped" `Quick
            test_daemon_caps_line_length;
          Alcotest.test_case "host resolution fails readably" `Quick
            test_resolve_ipv4;
          Alcotest.test_case "graceful drain" `Quick test_daemon_drain
        ] )
    ]
