(* Incremental evaluation under mutation: every layer of the update
   path — Index overlays, Split deltas, the incremental chase, and the
   server's Session.update — is held to one oracle: after any sequence
   of single-tuple updates, every answer must be bit-identical to what
   a session rebuilt from scratch on the updated database computes,
   for any --jobs. A stale cache entry anywhere (verdicts, kernel dbs,
   per-domain kernels, chase memos) shows up as a divergence here. *)

module Instance = Relational.Instance
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Names = Relational.Names
module Index = Relational.Index
module Split = Incomplete.Split
module Support = Incomplete.Support
module Chase = Constraints.Chase
module Dependency = Constraints.Dependency
module Session = Server.Session
module Parser = Logic.Parser
module Rat = Arith.Rat

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let seeds = List.init 220 Fun.id
let state seed = Random.State.make [| 0x0bda7e; seed |]

(* Constants must be named: 'g0'..'g3' round-trip through the parser,
   bare ints would not. *)
let const_pool = Array.map (fun s -> Value.const (Names.intern s))
    [| "g0"; "g1"; "g2"; "g3" |]

let gen_value st ~with_nulls =
  if with_nulls && Random.State.int st 3 = 0 then
    Value.null (1 + Random.State.int st 3)
  else const_pool.(Random.State.int st (Array.length const_pool))

let gen_tuple st arity ~with_nulls =
  Tuple.of_list (List.init arity (fun _ -> gen_value st ~with_nulls))

(* --- Relational.Index deltas -------------------------------------- *)

(* Random adds and removes, well past the overlay compaction cap, must
   leave the index observably equal to one rebuilt from the surviving
   tuples. *)
let test_index_incremental () =
  List.iter
    (fun seed ->
      let st = state seed in
      let live = ref [] in
      let idx = ref (Index.of_relation (Relation.of_rows 2 [])) in
      for _ = 1 to 40 do
        if !live <> [] && Random.State.int st 3 = 0 then begin
          let victim = List.nth !live (Random.State.int st (List.length !live)) in
          live := List.filter (fun t -> not (Tuple.equal t victim)) !live;
          idx := Index.remove !idx victim
        end
        else begin
          let t = gen_tuple st 2 ~with_nulls:true in
          if not (List.exists (Tuple.equal t) !live) then begin
            live := t :: !live;
            idx := Index.add !idx t
          end
        end
      done;
      let rebuilt =
        Index.of_relation (Relation.of_rows 2 (List.map Tuple.to_list !live))
      in
      check int_t "cardinal" (Index.cardinal rebuilt) (Index.cardinal !idx);
      List.iter
        (fun t -> check bool_t "member after deltas" true (Index.mem !idx t))
        !live;
      for _ = 1 to 10 do
        let t = gen_tuple st 2 ~with_nulls:true in
        check bool_t "probe agrees with rebuilt" (Index.mem rebuilt t)
          (Index.mem !idx t);
        let v = gen_value st ~with_nulls:true in
        let col = Random.State.int st 2 in
        let sorted l = List.sort Tuple.compare l in
        check bool_t "postings agree with rebuilt" true
          (List.equal Tuple.equal
             (sorted (Index.postings rebuilt ~column:col v))
             (sorted (Index.postings !idx ~column:col v)))
      done)
    (List.filteri (fun i _ -> i < 60) seeds)

let test_index_delta_errors () =
  let idx = Index.of_relation (Relation.of_rows 2 [ Tuple.to_list (gen_tuple (state 0) 2 ~with_nulls:false) ]) in
  (match Index.add idx (Tuple.of_list [ const_pool.(0) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity-mismatched add accepted")

(* --- Incomplete.Split deltas --------------------------------------- *)

let schema = Relational.Schema.make [ ("R", 2); ("S", 1) ]
let schema_text = "R(a,b); S(a)"

let gen_rows st bound arity =
  let rec go n acc =
    if n = 0 then acc
    else
      let t = gen_tuple st arity ~with_nulls:true in
      if List.exists (Tuple.equal t) acc then go (n - 1) acc
      else go (n - 1) (t :: acc)
  in
  go (Random.State.int st bound) []

let instance_of_model model =
  Instance.of_rows schema
    (List.map (fun (n, ts) -> (n, List.map Tuple.to_list ts)) model)

let split_agrees label s expected_inst =
  let fresh = Split.of_instance expected_inst in
  check bool_t (label ^ ": base") true
    (Instance.equal (Split.base s) expected_inst);
  check bool_t (label ^ ": ground") true
    (Instance.equal (Split.ground s) (Split.ground fresh));
  check bool_t (label ^ ": null tuples") true
    (List.equal
       (fun (n1, a1) (n2, a2) ->
         String.equal n1 n2
         && Array.length a1 = Array.length a2
         && Array.for_all2 Tuple.equal a1 a2)
       (Split.null_tuples s) (Split.null_tuples fresh));
  check bool_t (label ^ ": nulls") true
    (List.equal Int.equal (Split.nulls s) (Split.nulls fresh));
  check bool_t (label ^ ": constants") true
    (List.equal Int.equal (Split.constants s) (Split.constants fresh))

let test_split_incremental () =
  List.iter
    (fun seed ->
      let st = state seed in
      let model =
        ref [ ("R", gen_rows st 6 2); ("S", gen_rows st 4 1) ]
      in
      let s = ref (Split.of_instance (instance_of_model !model)) in
      for _ = 1 to 8 do
        let name, arity = if Random.State.bool st then ("R", 2) else ("S", 1) in
        let existing = List.assoc name !model in
        if existing <> [] && Random.State.bool st then begin
          let t = List.nth existing (Random.State.int st (List.length existing)) in
          model :=
            List.map
              (fun (n, ts) ->
                if String.equal n name then
                  (n, List.filter (fun u -> not (Tuple.equal u t)) ts)
                else (n, ts))
              !model;
          s := Split.remove !s ~name ~tuple:t
        end
        else begin
          let t = gen_tuple st arity ~with_nulls:true in
          if not (List.exists (Tuple.equal t) existing) then begin
            model :=
              List.map
                (fun (n, ts) ->
                  if String.equal n name then (n, t :: ts) else (n, ts))
                !model;
            s := Split.insert !s ~name ~tuple:t
          end
        end;
        split_agrees "after delta" !s (instance_of_model !model)
      done)
    (List.filteri (fun i _ -> i < 60) seeds)

let test_split_delta_errors () =
  let s = Split.of_instance (Instance.of_rows schema [ ("R", [ [ const_pool.(0); const_pool.(1) ] ]) ]) in
  let t01 = Tuple.of_list [ const_pool.(0); const_pool.(1) ] in
  (match Split.insert s ~name:"R" ~tuple:t01 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate insert accepted");
  (match Split.remove s ~name:"R" ~tuple:(Tuple.of_list [ const_pool.(2); const_pool.(2) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "absent remove accepted");
  (match Split.insert s ~name:"T" ~tuple:t01 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted")

(* --- incremental chase --------------------------------------------- *)

let gen_fds st =
  let fd lhs rhs = { Dependency.fd_relation = "R"; fd_lhs = lhs; fd_rhs = rhs } in
  match Random.State.int st 3 with
  | 0 -> [ fd [ 0 ] 1 ]
  | 1 -> [ fd [ 1 ] 0 ]
  | _ -> [ fd [ 0 ] 1; fd [ 1 ] 0 ]

let outcome_kind = function
  | Chase.Success _ -> "success"
  | Chase.Failure _ -> "failure"

let test_chase_inc_agrees () =
  let q = Parser.query_exn "Q() := exists x. exists y. R(x,y)" in
  List.iter
    (fun seed ->
      let st = state seed in
      let fds = gen_fds st in
      let inst = instance_of_model [ ("R", gen_rows st 6 2); ("S", []) ] in
      let prev = Chase.trace fds inst in
      (* grow by up to 3 tuples, resuming the memo each time *)
      let rec grow n inst prev =
        if n = 0 then ()
        else
          let tuple = gen_tuple st 2 ~with_nulls:true in
          if Instance.mem inst "R" tuple then grow n inst prev
          else begin
            let inst' = Instance.add_tuple "R" tuple inst in
            let prev' = Chase.chase_inc fds ~prev ~name:"R" ~tuple in
            let scratch = Chase.chase fds inst' in
            (* identical success/failure, and an identical measure —
               the chased instances may differ by a null renaming,
               which the measure is invariant under *)
            check string_t "outcome kind" (outcome_kind scratch)
              (outcome_kind (snd prev'));
            check string_t "µ(Q|Σ) identical"
              (Rat.to_string
                 (Zeroone.Conditional.mu_cond_chased scratch q Tuple.empty))
              (Rat.to_string
                 (Zeroone.Conditional.mu_cond_chased (snd prev') q Tuple.empty));
            grow (n - 1) inst' prev'
          end
      in
      grow 3 inst prev)
    seeds

(* --- the session-level oracle -------------------------------------- *)

(* Parser-facing rendering: quoted named constants and [~n] nulls
   round-trip ([Tuple.to_string]'s [_|_n] display form does not). *)
let render_value = function
  | Value.Const c -> "'" ^ Names.to_string c ^ "'"
  | Value.Null n -> Printf.sprintf "~%d" n

let render_tuple t =
  "(" ^ String.concat ", " (List.map render_value (Tuple.to_list t)) ^ ")"

let render_db model =
  String.concat "; "
    (List.map
       (fun (n, ts) ->
         Printf.sprintf "%s = { %s }" n
           (String.concat ", " (List.map render_tuple ts)))
       model)

let q_bool = "Q() := exists x. exists y. R(x,y) & S(x)"
let q_diff = "Q(x,y) := R(x,y) & !R(y,x)"
let fds_r = [ { Dependency.fd_relation = "R"; fd_lhs = [ 0 ]; fd_rhs = 1 } ]

let rel_string rel =
  String.concat "; " (List.map Tuple.to_string (Relation.to_list rel))

let series_string series =
  String.concat ";"
    (List.map (fun (k, v) -> Printf.sprintf "%d=%s" k (Rat.to_string v)) series)

(* One update step chosen against the model; returns the action the
   session must accept. *)
let gen_update st model =
  let name, arity = if Random.State.bool st then ("R", 2) else ("S", 1) in
  let existing = List.assoc name model in
  if existing <> [] && Random.State.bool st then
    let t = List.nth existing (Random.State.int st (List.length existing)) in
    (Session.Delete, name, t)
  else
    let rec fresh tries =
      let t = gen_tuple st arity ~with_nulls:true in
      if List.exists (Tuple.equal t) existing && tries > 0 then fresh (tries - 1)
      else t
    in
    let t = fresh 8 in
    if List.exists (Tuple.equal t) existing then (Session.Delete, name, t)
    else (Session.Insert, name, t)

let apply_model model action name tuple =
  List.map
    (fun (n, ts) ->
      if not (String.equal n name) then (n, ts)
      else
        match action with
        | Session.Insert -> (n, ts @ [ tuple ])
        | Session.Delete -> (n, List.filter (fun u -> not (Tuple.equal u tuple)) ts))
    model

(* After every update: the live session (delta-maintained kernel db,
   epoch-invalidated verdict cache, resumed chase memo) must answer
   certain / µ^k-series / conditional byte-identically to a session
   freshly rebuilt from the updated database text, at every jobs. *)
let oracle_one_seed ~jobs seed =
  let st = state seed in
  let model = ref [ ("R", gen_rows st 5 2); ("S", gen_rows st 3 1) ] in
  let db0 = render_db !model in
  let store = Session.create () in
  let q1 = Parser.query_exn q_bool and q2 = Parser.query_exn q_diff in
  (match Session.get store ~schema:schema_text ~db:db0 with
  | Error msg -> Alcotest.failf "seed %d: load: %s" seed msg
  | Ok _ -> ());
  let folded = ref (Result.get_ok (Session.get store ~schema:schema_text ~db:db0)).Session.inst in
  for _step = 1 to 4 do
    let action, name, tuple = gen_update st !model in
    (match
       Session.update store ~schema:schema_text ~db:db0 ~action
         ~relation:name ~tuple
     with
    | Error msg -> Alcotest.failf "seed %d: update: %s" seed msg
    | Ok _ -> ());
    model := apply_model !model action name tuple;
    folded :=
      (match action with
      | Session.Insert -> Instance.add_tuple name tuple !folded
      | Session.Delete -> Instance.remove_tuple name tuple !folded);
    let entry = Result.get_ok (Session.get store ~schema:schema_text ~db:db0) in
    let live = entry.Session.inst in
    check bool_t "live instance = folded instance" true
      (Instance.equal live !folded);
    (* the rebuilt session: fresh store keyed by the updated text *)
    let fresh_store = Session.create () in
    let fresh =
      Result.get_ok
        (Session.get fresh_store ~schema:schema_text ~db:(render_db !model))
    in
    check bool_t "live instance = reparsed instance" true
      (Instance.equal live fresh.Session.inst);
    (* certain answers (class sweep through the verdict cache) *)
    check string_t "certain answers identical"
      (rel_string
         (Incomplete.Certain.certain_answers ~jobs ~cache:fresh.Session.cache
            fresh.Session.inst q2))
      (rel_string
         (Incomplete.Certain.certain_answers ~jobs ~cache:entry.Session.cache
            live q2));
    (* µ^k series (odometer sweep on the delta-maintained kernel db) *)
    check string_t "mu_k series identical"
      (series_string
         (Support.mu_k_series ~jobs ~cache:fresh.Session.cache
            fresh.Session.inst q1 Tuple.empty ~ks:[ 2; 3 ]))
      (series_string
         (Support.mu_k_series ~jobs ~cache:entry.Session.cache live q1
            Tuple.empty ~ks:[ 2; 3 ]));
    (* conditional, chase path: resumed memo vs from-scratch chase *)
    check string_t "conditional chase identical"
      (Rat.to_string (Zeroone.Conditional.mu_cond_fds fds_r fresh.Session.inst q1 Tuple.empty))
      (Rat.to_string
         (Zeroone.Conditional.mu_cond_chased
            (Session.chase_outcome entry ~inst:live fds_r)
            q1 Tuple.empty))
  done

let test_oracle_jobs_1 () = List.iter (oracle_one_seed ~jobs:1) seeds

let test_oracle_jobs_2_4 () =
  (* the parallel sweeps share the persistent pool; a shorter seed run
     per jobs keeps the suite quick while still crossing domains *)
  List.iter
    (fun jobs ->
      List.iter (oracle_one_seed ~jobs) (List.filteri (fun i _ -> i < 60) seeds))
    [ 2; 4 ]

(* --- session update validation ------------------------------------- *)

let test_session_update_errors () =
  let store = Session.create () in
  let db = "R = { ('g0', 'g1') }; S = { }" in
  let expect_err label action relation tuple needle =
    match
      Session.update store ~schema:schema_text ~db ~action ~relation ~tuple
    with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error msg ->
        check bool_t (label ^ " diagnostic") true (contains msg needle)
  in
  let t01 = Tuple.of_list [ const_pool.(0); const_pool.(1) ] in
  expect_err "unknown relation" Session.Insert "T" t01 "unknown relation";
  expect_err "arity mismatch" Session.Insert "S" t01 "arity";
  expect_err "delete absent" Session.Delete "S"
    (Tuple.of_list [ const_pool.(2) ])
    "not in";
  expect_err "duplicate insert" Session.Insert "R" t01 "already";
  (* and none of those left the session corrupted *)
  let entry = Result.get_ok (Session.get store ~schema:schema_text ~db) in
  check int_t "R untouched" 1
    (Relation.cardinal (Instance.relation entry.Session.inst "R"))

(* --- store behaviour: LRU + load counting -------------------------- *)

let test_session_lru_touch () =
  let s = Session.create ~max_sessions:2 () in
  let db_b = "R = { }; S = { ('g0') }" in
  let db_c = "R = { }; S = { ('g1') }" in
  let e_a = Result.get_ok (Session.get s ~schema:schema_text ~db:"R = { }; S = { }") in
  ignore (Result.get_ok (Session.get s ~schema:schema_text ~db:db_b));
  (* touch A: under FIFO it would still be evicted next; under LRU the
     untouched B goes instead *)
  ignore (Result.get_ok (Session.get s ~schema:schema_text ~db:"R = { }; S = { }"));
  ignore (Result.get_ok (Session.get s ~schema:schema_text ~db:db_c));
  check int_t "capped" 2 (Session.count s);
  let e_a' = Result.get_ok (Session.get s ~schema:schema_text ~db:"R = { }; S = { }") in
  check bool_t "recently-used session survived" true (e_a == e_a');
  let e_b' = Result.get_ok (Session.get s ~schema:schema_text ~db:db_b) in
  check bool_t "least-recently-used session was evicted" false
    (e_b' == e_a')

let test_session_load_race_counts_once () =
  Obs.Metrics.enable ();
  let s = Session.create () in
  let before = Obs.Metrics.value Obs.Metrics.serve_session_loads in
  let barrier = Atomic.make 0 in
  let worker () =
    Atomic.incr barrier;
    while Atomic.get barrier < 4 do Domain.cpu_relax () done;
    Result.get_ok (Session.get s ~schema:schema_text ~db:"R = { ('g0', ~1) }; S = { }")
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let entries = List.map Domain.join domains in
  (match entries with
  | e :: rest ->
      List.iter
        (fun e' -> check bool_t "all racers share one entry" true (e == e'))
        rest
  | [] -> assert false);
  check int_t "exactly one load counted"
    (before + 1)
    (Obs.Metrics.value Obs.Metrics.serve_session_loads)

let () =
  Alcotest.run "update"
    [ ( "index",
        [ Alcotest.test_case "random deltas = rebuilt index" `Quick
            test_index_incremental;
          Alcotest.test_case "delta validation" `Quick test_index_delta_errors
        ] );
      ( "split",
        [ Alcotest.test_case "random deltas = of_instance" `Quick
            test_split_incremental;
          Alcotest.test_case "delta validation" `Quick test_split_delta_errors
        ] );
      ( "chase",
        [ Alcotest.test_case "resumed chase = from-scratch chase" `Quick
            test_chase_inc_agrees
        ] );
      ( "oracle",
        [ Alcotest.test_case "update path = rebuild, jobs 1 (220 seeds)"
            `Quick test_oracle_jobs_1;
          Alcotest.test_case "update path = rebuild, jobs 2 and 4" `Quick
            test_oracle_jobs_2_4
        ] );
      ( "session",
        [ Alcotest.test_case "update validation" `Quick
            test_session_update_errors;
          Alcotest.test_case "LRU keeps the touched session" `Quick
            test_session_lru_touch;
          Alcotest.test_case "racing loads count once" `Quick
            test_session_load_race_counts_once
        ] )
    ]
